#include "bench_common.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include "common/log.hpp"
#include "common/membudget.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "harness/fault.hpp"
#include "harness/journal.hpp"
#include "io/registry.hpp"
#include "kernels/mttkrp.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"
#include "simd/simd.hpp"
#include "roofline/roofline.hpp"
#include "validate/diff.hpp"
#include "validate/validate.hpp"

namespace pasta::bench {

namespace {

double
parse_env_double(const char* name, const char* value, double lo, double hi)
{
    char* end = nullptr;
    const double v = std::strtod(value, &end);
    PASTA_CHECK_MSG(*value && *end == '\0' && v > lo && v <= hi,
                    name << "='" << value << "' must be a number in ("
                         << lo << ", " << hi << "]");
    return v;
}

std::size_t
parse_env_size(const char* name, const char* value, std::size_t lo,
               std::size_t hi)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    PASTA_CHECK_MSG(*value && *end == '\0' && v >= lo && v <= hi,
                    name << "='" << value << "' must be an integer in ["
                         << lo << ", " << hi << "]");
    return static_cast<std::size_t>(v);
}

}  // namespace

BenchOptions
options_from_env()
{
    set_log_threshold_from_env();
    // Arm fault injection before anything the guards protect can run.
    harness::FaultInjector::instance().configure_from_env();
    // Arm the memory governor ($PASTA_MEM_BYTES) before the first large
    // allocation so bounded-memory campaigns degrade instead of dying.
    membudget::MemGovernor::instance().configure_from_env();
    // Parse PASTA_VALIDATE, PASTA_TRACE, and the SIMD dispatch knobs up
    // front so a malformed value fails the run immediately instead of
    // being classified (and retried) as a per-trial failure.
    (void)validate::current_mode();
    (void)obs::current_mode();
    (void)simd::active_isa();
    (void)simd::prefetch_distance();
    // Arm the live metrics heartbeat ($PASTA_METRICS=<path>[,interval_ms])
    // so long bench runs are tailable mid-flight; a no-op when unset.
    (void)obs::metrics::arm_from_env("bench");

    BenchOptions options;
    if (const char* s = std::getenv("PASTA_SCALE"))
        options.scale = parse_env_double("PASTA_SCALE", s, 0.0, 1.0);
    if (const char* s = std::getenv("PASTA_RUNS"))
        options.runs = parse_env_size("PASTA_RUNS", s, 1, 1000000);
    if (const char* s = std::getenv("PASTA_CACHE"))
        options.cache_dir = s;
    options.trial_policy = harness::TrialPolicy::from_env();
    const char* fault = std::getenv("PASTA_FAULT");
    if (!std::getenv("PASTA_TRIAL_TIMEOUT") && fault &&
        std::strstr(fault, "hang")) {
        // An armed hang with no explicit watchdog would stall the suite
        // forever; arm a generous default instead.
        options.trial_policy.timeout_seconds = 60.0;
        PASTA_LOG_WARN << "PASTA_FAULT has a hang rule and "
                          "PASTA_TRIAL_TIMEOUT is unset; defaulting the "
                          "watchdog to 60 s";
    }
    if (const char* s = std::getenv("PASTA_JOURNAL"))
        options.journal_enabled = std::strcmp(s, "0") != 0;
    return options;
}

std::vector<NamedTensor>
load_suite(const BenchOptions& options)
{
    TensorRegistry registry(options.cache_dir, options.scale);
    std::vector<NamedTensor> suite;
    const int max_attempts =
        options.trial_policy.max_attempts < 1
            ? 1
            : options.trial_policy.max_attempts;
    for (const auto* table :
         {&real_dataset_table(), &synthetic_dataset_table()}) {
        for (const auto& spec : *table) {
            bool loaded = false;
            std::string last_error;
            for (int attempt = 1; attempt <= max_attempts && !loaded;
                 ++attempt) {
                try {
                    suite.push_back(
                        {spec.id, spec.name, registry.load(spec.id)});
                    loaded = true;
                } catch (const PastaError& e) {
                    last_error = e.what();
                } catch (const std::bad_alloc&) {
                    last_error = "out of memory (std::bad_alloc)";
                }
            }
            if (!loaded) {
                PASTA_LOG_ERROR << "cannot load dataset " << spec.id
                                << " after " << max_attempts
                                << " attempts (" << last_error
                                << "); skipping it";
            }
        }
    }
    return suite;
}

namespace {

/// Builds a same-pattern sibling with refreshed values (TEW operand).
CooTensor
sibling(const CooTensor& x, std::uint64_t seed)
{
    Rng rng(seed);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    return y;
}

/// Per-tensor measurement context shared by the CPU and GPU paths.
/// Heap-allocated (shared_ptr) because trial bodies may outlive a timed-
/// out attempt: an abandoned watchdog worker still holds its captures.
struct TensorContext {
    const NamedTensor* entry = nullptr;
    CooTensor y;                  ///< TEW sibling
    HiCooTensor hx;               ///< HiCOO form of x
    HiCooTensor hy;               ///< HiCOO form of y
    std::vector<DenseMatrix> mats;  ///< MTTKRP factors
    DenseMatrix mttkrp_out;       ///< widest output buffer

    FactorList factors() const
    {
        FactorList list;
        for (const auto& m : mats)
            list.push_back(&m);
        return list;
    }
};

void
fill_context(TensorContext& ctx, const NamedTensor& entry,
             const BenchOptions& options)
{
    harness::fault_point("alloc");
    ctx.entry = &entry;
    ctx.y = sibling(entry.tensor, 17);
    ctx.hx = coo_to_hicoo(entry.tensor, options.block_bits);
    ctx.hy = coo_to_hicoo(ctx.y, options.block_bits);
    Rng rng(23);
    Index widest = 0;
    ctx.mats.clear();
    for (Size m = 0; m < entry.tensor.order(); ++m) {
        ctx.mats.push_back(
            DenseMatrix::random(entry.tensor.dim(m), options.rank, rng));
        widest = std::max(widest, entry.tensor.dim(m));
    }
    ctx.mttkrp_out = DenseMatrix(widest, options.rank);
}

/// Mode-independent stats (TEW/TS/MTTKRP).
TensorStats
base_stats(const CooTensor& x, const HiCooTensor& hx)
{
    TensorStats stats;
    stats.order = x.order();
    stats.nnz = x.nnz();
    stats.num_blocks = hx.num_blocks();
    stats.block_size = hx.block_size();
    return stats;
}

std::string
sanitize_tag(const std::string& name)
{
    std::string tag;
    for (char c : name)
        tag += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return tag;
}

/// Total occurrence count of one label key in a snapshot.
std::uint64_t
label_count(const obs::CountersSnapshot& snap, const char* key)
{
    for (const auto& label : snap.labels) {
        if (label.key != key)
            continue;
        std::uint64_t total = 0;
        for (const auto& kv : label.counts)
            total += kv.second;
        return total;
    }
    return 0;
}

/// The variant label this trial exercised: the highest-priority label
/// key whose occurrence count grew during the trial.  Comparing counts
/// (not last values) keeps a stale label from a previous trial out.
/// When the trial also stamped a SIMD dispatch decision, the ISA is
/// appended as a suffix ("atomic_avx2"); trials whose only decision was
/// the SIMD path (TTV, TTM, TEW) report the bare ISA.
std::string
trial_variant(const obs::CountersSnapshot& before,
              const obs::CountersSnapshot& after)
{
    std::string isa;
    if (label_count(after, "simd.isa") > label_count(before, "simd.isa"))
        isa = after.label("simd.isa");
    for (const char* key : {"stream.variant", "mttkrp.variant",
                            "merge.path", "sort.path"}) {
        if (label_count(after, key) > label_count(before, key)) {
            std::string variant = after.label(key);
            if (!isa.empty())
                variant += "_" + isa;
            return variant;
        }
    }
    return isa;
}

/// Failure class recorded in the journal and failure CSVs: "" (ok),
/// "timeout", "validation" (structural/differential check failed), "oom"
/// (memory budget exhausted even after the degrade retry), or "error"
/// (any other trial error).
std::string
failure_class(const harness::TrialResult& trial)
{
    if (trial.ok)
        return "";
    if (trial.timed_out)
        return "timeout";
    if (trial.validation)
        return "validation";
    if (trial.oom)
        return "oom";
    return "error";
}

/// Drives one suite: journal lookup, guarded execution, and partial-
/// result bookkeeping for every (tensor, kernel, format) trial.
class SuiteRunner {
  public:
    SuiteRunner(const BenchOptions& options, const std::string& platform)
        : options_(options), policy_(options.trial_policy)
    {
        if (options.journal_enabled && !options.journal_stem.empty() &&
            !options.cache_dir.empty())
            journal_ = harness::RunJournal(
                options.cache_dir + "/" + options.journal_stem + "." +
                sanitize_tag(platform) + ".journal.jsonl");
    }

    SuiteResult take_result() { return std::move(result_); }

    /// Journal, then guarded execution.  `body` returns mean seconds and
    /// fills `*cost` before returning; both live behind shared_ptr so an
    /// abandoned (timed-out) attempt cannot touch freed memory.
    void run_trial(const NamedTensor& entry, Kernel kernel, Format format,
                   const std::shared_ptr<KernelCost>& cost,
                   std::function<double()> body)
    {
        const char* kname = kernel_name(kernel);
        const char* fname = format_name(format);
        if (journal_.enabled()) {
            const harness::JournalEntry* done =
                journal_.find(entry.id, kname, fname);
            if (done && done->ok) {
                MeasuredRun run;
                run.tensor_id = entry.id;
                run.kernel = kernel;
                run.format = format;
                run.seconds = done->seconds;
                run.cost.flops = done->flops;
                run.cost.bytes = done->bytes;
                run.variant = done->variant;
                run.obs_flops = done->obs_flops;
                run.obs_bytes = done->obs_bytes;
                run.mem_peak = done->mem_peak;
                result_.runs.push_back(run);
                ++result_.resumed;
                return;
            }
        }

        const std::string label =
            std::string(kname) + "/" + fname + " on " + entry.id;
        auto guarded = [body = std::move(body)] {
            harness::fault_point("kernel.run");
            return body();
        };
        // Counter deltas around the guarded trial give the trial's
        // model-derived flops/bytes and the variant the kernel picked.
        const bool counters = obs::counters_enabled();
        obs::CountersSnapshot before;
        if (counters)
            before = obs::snapshot_counters();
        // Per-trial high-water mark: reset so mem_peak reflects this
        // trial alone, not the campaign maximum so far.
        membudget::MemGovernor::instance().reset_peak();
        const harness::TrialResult trial =
            harness::run_guarded_trial(label, guarded, policy_);
        const double mem_peak = static_cast<double>(
            membudget::MemGovernor::instance().peak());

        harness::JournalEntry record;
        record.tensor_id = entry.id;
        record.kernel = kname;
        record.format = fname;
        record.ok = trial.ok;
        record.seconds = trial.seconds;
        record.attempts = trial.attempts;
        record.error = trial.error;
        record.failure_class = failure_class(trial);
        record.mem_peak = mem_peak;
        if (trial.ok) {
            MeasuredRun run;
            run.tensor_id = entry.id;
            run.kernel = kernel;
            run.format = format;
            run.seconds = trial.seconds;
            run.cost = *cost;
            run.mem_peak = mem_peak;
            if (counters) {
                const obs::CountersSnapshot after =
                    obs::snapshot_counters();
                run.obs_flops =
                    obs::delta_suffix_sum(before, after, ".flops");
                run.obs_bytes =
                    obs::delta_suffix_sum(before, after, ".bytes");
                run.variant = trial_variant(before, after);
            }
            record.flops = cost->flops;
            record.bytes = cost->bytes;
            record.variant = run.variant;
            record.obs_flops = run.obs_flops;
            record.obs_bytes = run.obs_bytes;
            result_.runs.push_back(run);
        } else {
            result_.failures.push_back({entry.id, kname, fname, trial.error,
                                        trial.timed_out, trial.attempts,
                                        failure_class(trial)});
        }
        journal_.append(record);
    }

    /// True when every (kernel, format) trial of `entry` is already in
    /// the journal, so context construction can be skipped entirely.
    bool fully_journaled(const NamedTensor& entry) const
    {
        if (!journal_.enabled())
            return false;
        for (Kernel k : {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                         Kernel::kTtm, Kernel::kMttkrp})
            for (Format f : {Format::kCoo, Format::kHicoo})
                if (!journal_.has_ok(entry.id, kernel_name(k),
                                     format_name(f)))
                    return false;
        return true;
    }

    /// Replays all ten journaled trials of a fully-journaled tensor.
    void resume_tensor(const NamedTensor& entry)
    {
        auto unused = std::make_shared<KernelCost>();
        for (Kernel k : {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                         Kernel::kTtm, Kernel::kMttkrp})
            for (Format f : {Format::kCoo, Format::kHicoo})
                run_trial(entry, k, f, unused, [] { return 0.0; });
    }

    /// Builds the per-tensor context under the same guard as trials.
    /// Returns nullptr (and records a whole-tensor failure) on failure.
    std::shared_ptr<TensorContext>
    make_context(const NamedTensor& entry)
    {
        auto ctx = std::make_shared<TensorContext>();
        const BenchOptions& options = options_;
        const NamedTensor* entry_ptr = &entry;
        const harness::TrialResult trial = harness::run_guarded_trial(
            "context on " + entry.id,
            [ctx, entry_ptr, options] {
                fill_context(*ctx, *entry_ptr, options);
                return 0.0;
            },
            policy_);
        if (trial.ok)
            return ctx;
        result_.failures.push_back({entry.id, "*", "*",
                                    "context setup failed: " + trial.error,
                                    trial.timed_out, trial.attempts,
                                    failure_class(trial)});
        return nullptr;
    }

    const harness::TrialPolicy& policy() const { return policy_; }

  private:
    const BenchOptions& options_;
    harness::TrialPolicy policy_;
    harness::RunJournal journal_;
    SuiteResult result_;
};

}  // namespace

SuiteResult
run_cpu_suite(const std::vector<NamedTensor>& suite,
              const BenchOptions& options)
{
    SuiteRunner runner(options, "cpu");
    for (const auto& entry : suite) {
        if (runner.fully_journaled(entry)) {
            PASTA_LOG_INFO << "cpu suite: " << entry.id
                           << " fully journaled; resuming";
            runner.resume_tensor(entry);
            continue;
        }
        PASTA_LOG_INFO << "cpu suite: " << entry.id << " ("
                       << entry.tensor.describe() << ")";
        std::shared_ptr<TensorContext> ctx = runner.make_context(entry);
        if (!ctx)
            continue;
        const TensorStats stats0 = base_stats(entry.tensor, ctx->hx);
        const std::size_t runs = options.runs;
        const unsigned block_bits = options.block_bits;
        const Size rank = options.rank;

        // ---- TEW (addition as representative, §V-A2) ----
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTew, Format::kCoo, stats0));
            runner.run_trial(entry, Kernel::kTew, Format::kCoo, cost,
                             [ctx, runs] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 CooTensor z = x;
                                 const double secs =
                                     timed_runs(
                                         [&] {
                                             tew_values(
                                                 EwOp::kAdd,
                                                 x.values().data(),
                                                 ctx->y.values().data(),
                                                 z.values().data(),
                                                 x.nnz());
                                         },
                                         runs)
                                         .mean_seconds;
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_tew(
                                         EwOp::kAdd, x.values().data(),
                                         ctx->y.values().data(),
                                         z.values().data(), x.nnz())
                                         .require();
                                 return secs;
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTew, Format::kHicoo, stats0));
            runner.run_trial(entry, Kernel::kTew, Format::kHicoo, cost,
                             [ctx, runs] {
                                 HiCooTensor hz = ctx->hx;
                                 const double secs =
                                     timed_runs(
                                         [&] {
                                             tew_values(
                                                 EwOp::kAdd,
                                                 ctx->hx.values().data(),
                                                 ctx->hy.values().data(),
                                                 hz.values().data(),
                                                 ctx->hx.nnz());
                                         },
                                         runs)
                                         .mean_seconds;
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_tew(
                                         EwOp::kAdd,
                                         ctx->hx.values().data(),
                                         ctx->hy.values().data(),
                                         hz.values().data(),
                                         ctx->hx.nnz())
                                         .require();
                                 return secs;
                             });
        }

        // ---- TS (multiplication as representative) ----
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTs, Format::kCoo, stats0));
            runner.run_trial(entry, Kernel::kTs, Format::kCoo, cost,
                             [ctx, runs] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 CooTensor out = x;
                                 const double secs =
                                     timed_runs(
                                         [&] {
                                             ts_values(
                                                 TsOp::kMul,
                                                 x.values().data(),
                                                 out.values().data(),
                                                 x.nnz(), 1.0009f);
                                         },
                                         runs)
                                         .mean_seconds;
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_ts(
                                         TsOp::kMul, x.values().data(),
                                         1.0009f, out.values().data(),
                                         x.nnz())
                                         .require();
                                 return secs;
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTs, Format::kHicoo, stats0));
            runner.run_trial(entry, Kernel::kTs, Format::kHicoo, cost,
                             [ctx, runs] {
                                 HiCooTensor hout = ctx->hx;
                                 const double secs =
                                     timed_runs(
                                         [&] {
                                             ts_values(
                                                 TsOp::kMul,
                                                 ctx->hx.values().data(),
                                                 hout.values().data(),
                                                 ctx->hx.nnz(), 1.0009f);
                                         },
                                         runs)
                                         .mean_seconds;
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_ts(
                                         TsOp::kMul,
                                         ctx->hx.values().data(), 1.0009f,
                                         hout.values().data(),
                                         ctx->hx.nnz())
                                         .require();
                                 return secs;
                             });
        }

        // ---- TTV / TTM / MTTKRP: averaged over all modes, one guarded
        // trial per (kernel, format) so a hang in one leaves the rest.
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtv, Format::kCoo, cost,
                [ctx, cost, runs, stats0] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        Rng rng(31 + mode);
                        DenseVector v =
                            DenseVector::random(x.dim(mode), rng);
                        CooTtvPlan plan = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = plan.fibers.num_fibers();
                        CooTensor out = plan.out_pattern;
                        total += timed_runs(
                                     [&] { ttv_exec_coo(plan, v, out); },
                                     runs)
                                     .mean_seconds;
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttv(x, v, mode, out).require();
                        const KernelCost c = kernel_cost(
                            Kernel::kTtv, Format::kCoo, stats);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtv, Format::kHicoo, cost,
                [ctx, cost, runs, stats0, block_bits] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        Rng rng(31 + mode);
                        DenseVector v =
                            DenseVector::random(x.dim(mode), rng);
                        // Fiber stats come from the COO plan, as before.
                        CooTtvPlan coo_plan = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = coo_plan.fibers.num_fibers();
                        HicooTtvPlan plan =
                            ttv_plan_hicoo(x, mode, block_bits);
                        HiCooTensor out = plan.out_pattern;
                        total += timed_runs(
                                     [&] { ttv_exec_hicoo(plan, v, out); },
                                     runs)
                                     .mean_seconds;
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttv(x, v, mode,
                                               hicoo_to_coo(out))
                                .require();
                        const KernelCost c = kernel_cost(
                            Kernel::kTtv, Format::kHicoo, stats);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtm, Format::kCoo, cost,
                [ctx, cost, runs, stats0, rank] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        CooTtvPlan fib = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = fib.fibers.num_fibers();
                        CooTtmPlan plan = ttm_plan_coo(x, mode, rank);
                        ScooTensor out = plan.out_pattern;
                        const DenseMatrix& u = ctx->mats[mode];
                        total +=
                            timed_runs(
                                [&] { ttm_exec_coo(plan, u, out); }, runs)
                                .mean_seconds;
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttm(x, u, mode, out).require();
                        const KernelCost c = kernel_cost(
                            Kernel::kTtm, Format::kCoo, stats, rank);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtm, Format::kHicoo, cost,
                [ctx, cost, runs, stats0, rank, block_bits] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        CooTtvPlan fib = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = fib.fibers.num_fibers();
                        HicooTtmPlan plan =
                            ttm_plan_hicoo(x, mode, rank, block_bits);
                        SHiCooTensor out = plan.out_pattern;
                        const DenseMatrix& u = ctx->mats[mode];
                        total += timed_runs(
                                     [&] { ttm_exec_hicoo(plan, u, out); },
                                     runs)
                                     .mean_seconds;
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttm(x, u, mode, out.to_scoo())
                                .require();
                        const KernelCost c = kernel_cost(
                            Kernel::kTtm, Format::kHicoo, stats, rank);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>(kernel_cost(
                Kernel::kMttkrp, Format::kCoo, stats0, options.rank));
            runner.run_trial(entry, Kernel::kMttkrp, Format::kCoo, cost,
                             [ctx, runs, rank] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 const Size order = x.order();
                                 double total = 0;
                                 for (Size mode = 0; mode < order;
                                      ++mode) {
                                     FactorList factors = ctx->factors();
                                     DenseMatrix out(x.dim(mode), rank);
                                     total +=
                                         timed_runs(
                                             [&] {
                                                 mttkrp_coo(x, factors,
                                                            mode, out);
                                             },
                                             runs)
                                             .mean_seconds;
                                     if (validate::
                                             kernel_checks_enabled())
                                         validate::diff_mttkrp(
                                             x, factors, mode, out)
                                             .require();
                                 }
                                 return total /
                                        static_cast<double>(order);
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(kernel_cost(
                Kernel::kMttkrp, Format::kHicoo, stats0, options.rank));
            runner.run_trial(entry, Kernel::kMttkrp, Format::kHicoo, cost,
                             [ctx, runs, rank] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 const Size order = x.order();
                                 double total = 0;
                                 for (Size mode = 0; mode < order;
                                      ++mode) {
                                     FactorList factors = ctx->factors();
                                     DenseMatrix out(x.dim(mode), rank);
                                     total += timed_runs(
                                                  [&] {
                                                      mttkrp_hicoo(
                                                          ctx->hx, factors,
                                                          mode, out);
                                                  },
                                                  runs)
                                                  .mean_seconds;
                                     if (validate::
                                             kernel_checks_enabled())
                                         validate::diff_mttkrp(
                                             x, factors, mode, out)
                                             .require();
                                 }
                                 return total /
                                        static_cast<double>(order);
                             });
        }
    }
    maybe_export_trace(
        (options.journal_stem.empty() ? std::string("pasta")
                                      : options.journal_stem) +
        ".cpu");
    return runner.take_result();
}

SuiteResult
run_gpu_suite(const std::vector<NamedTensor>& suite,
              const gpusim::DeviceSpec& device, const BenchOptions& options)
{
    using namespace gpusim;
    SuiteRunner runner(options, std::string("gpu_") + device.name);
    for (const auto& entry : suite) {
        if (runner.fully_journaled(entry)) {
            PASTA_LOG_INFO << "gpu suite (" << device.name
                           << "): " << entry.id
                           << " fully journaled; resuming";
            runner.resume_tensor(entry);
            continue;
        }
        PASTA_LOG_INFO << "gpu suite (" << device.name
                       << "): " << entry.id;
        std::shared_ptr<TensorContext> ctx = runner.make_context(entry);
        if (!ctx)
            continue;
        const TensorStats stats0 = base_stats(entry.tensor, ctx->hx);
        const unsigned block_bits = options.block_bits;
        const Size rank = options.rank;
        const DeviceSpec dev = device;

        // TEW / TS: one launch each per format.
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTew, Format::kCoo, stats0));
            runner.run_trial(entry, Kernel::kTew, Format::kCoo, cost,
                             [ctx, dev] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 CooTensor z = x;
                                 LaunchProfile p = tew_gpu_coo(
                                     x, ctx->y, EwOp::kAdd, z);
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_tew(
                                         EwOp::kAdd, x.values().data(),
                                         ctx->y.values().data(),
                                         z.values().data(), x.nnz())
                                         .require();
                                 return estimate_seconds(dev, p);
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTew, Format::kHicoo, stats0));
            runner.run_trial(entry, Kernel::kTew, Format::kHicoo, cost,
                             [ctx, dev] {
                                 HiCooTensor hz = ctx->hx;
                                 LaunchProfile p = tew_gpu_hicoo(
                                     ctx->hx, ctx->hy, EwOp::kAdd, hz);
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_tew(
                                         EwOp::kAdd,
                                         ctx->hx.values().data(),
                                         ctx->hy.values().data(),
                                         hz.values().data(),
                                         ctx->hx.nnz())
                                         .require();
                                 return estimate_seconds(dev, p);
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTs, Format::kCoo, stats0));
            runner.run_trial(entry, Kernel::kTs, Format::kCoo, cost,
                             [ctx, dev] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 CooTensor out = x;
                                 LaunchProfile p = ts_gpu_coo(
                                     x, TsOp::kMul, 1.0009f, out);
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_ts(
                                         TsOp::kMul, x.values().data(),
                                         1.0009f, out.values().data(),
                                         x.nnz())
                                         .require();
                                 return estimate_seconds(dev, p);
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(
                kernel_cost(Kernel::kTs, Format::kHicoo, stats0));
            runner.run_trial(entry, Kernel::kTs, Format::kHicoo, cost,
                             [ctx, dev] {
                                 HiCooTensor hout = ctx->hx;
                                 LaunchProfile p = ts_gpu_hicoo(
                                     ctx->hx, TsOp::kMul, 1.0009f, hout);
                                 if (validate::kernel_checks_enabled())
                                     validate::diff_ts(
                                         TsOp::kMul,
                                         ctx->hx.values().data(), 1.0009f,
                                         hout.values().data(),
                                         ctx->hx.nnz())
                                         .require();
                                 return estimate_seconds(dev, p);
                             });
        }

        // TTV / TTM / MTTKRP averaged across modes, per (kernel, format).
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtv, Format::kCoo, cost,
                [ctx, cost, dev, stats0] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        Rng rng(31 + mode);
                        DenseVector v =
                            DenseVector::random(x.dim(mode), rng);
                        CooTtvPlan plan = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = plan.fibers.num_fibers();
                        CooTensor out = plan.out_pattern;
                        LaunchProfile p = ttv_gpu_coo(plan, v, out);
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttv(x, v, mode, out).require();
                        total += estimate_seconds(dev, p);
                        const KernelCost c = kernel_cost(
                            Kernel::kTtv, Format::kCoo, stats);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtv, Format::kHicoo, cost,
                [ctx, cost, dev, stats0, block_bits] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        Rng rng(31 + mode);
                        DenseVector v =
                            DenseVector::random(x.dim(mode), rng);
                        CooTtvPlan coo_plan = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = coo_plan.fibers.num_fibers();
                        HicooTtvPlan plan =
                            ttv_plan_hicoo(x, mode, block_bits);
                        HiCooTensor out = plan.out_pattern;
                        LaunchProfile p = ttv_gpu_hicoo(plan, v, out);
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttv(x, v, mode,
                                               hicoo_to_coo(out))
                                .require();
                        total += estimate_seconds(dev, p);
                        const KernelCost c = kernel_cost(
                            Kernel::kTtv, Format::kHicoo, stats);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtm, Format::kCoo, cost,
                [ctx, cost, dev, stats0, rank] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        CooTtvPlan fib = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = fib.fibers.num_fibers();
                        CooTtmPlan plan = ttm_plan_coo(x, mode, rank);
                        ScooTensor out = plan.out_pattern;
                        LaunchProfile p =
                            ttm_gpu_coo(plan, ctx->mats[mode], out);
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttm(x, ctx->mats[mode], mode,
                                               out)
                                .require();
                        total += estimate_seconds(dev, p);
                        const KernelCost c = kernel_cost(
                            Kernel::kTtm, Format::kCoo, stats, rank);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>();
            runner.run_trial(
                entry, Kernel::kTtm, Format::kHicoo, cost,
                [ctx, cost, dev, stats0, rank, block_bits] {
                    const CooTensor& x = ctx->entry->tensor;
                    const Size order = x.order();
                    double total = 0;
                    KernelCost acc;
                    for (Size mode = 0; mode < order; ++mode) {
                        CooTtvPlan fib = ttv_plan_coo(x, mode);
                        TensorStats stats = stats0;
                        stats.num_fibers = fib.fibers.num_fibers();
                        HicooTtmPlan plan =
                            ttm_plan_hicoo(x, mode, rank, block_bits);
                        SHiCooTensor out = plan.out_pattern;
                        LaunchProfile p =
                            ttm_gpu_hicoo(plan, ctx->mats[mode], out);
                        if (validate::kernel_checks_enabled())
                            validate::diff_ttm(x, ctx->mats[mode], mode,
                                               out.to_scoo())
                                .require();
                        total += estimate_seconds(dev, p);
                        const KernelCost c = kernel_cost(
                            Kernel::kTtm, Format::kHicoo, stats, rank);
                        acc.flops += c.flops / order;
                        acc.bytes += c.bytes / order;
                    }
                    *cost = acc;
                    return total / static_cast<double>(order);
                });
        }
        {
            auto cost = std::make_shared<KernelCost>(kernel_cost(
                Kernel::kMttkrp, Format::kCoo, stats0, options.rank));
            runner.run_trial(entry, Kernel::kMttkrp, Format::kCoo, cost,
                             [ctx, dev, rank] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 const Size order = x.order();
                                 double total = 0;
                                 for (Size mode = 0; mode < order;
                                      ++mode) {
                                     FactorList factors = ctx->factors();
                                     DenseMatrix out(x.dim(mode), rank);
                                     LaunchProfile p = mttkrp_gpu_coo(
                                         x, factors, mode, out);
                                     if (validate::
                                             kernel_checks_enabled())
                                         validate::diff_mttkrp(
                                             x, factors, mode, out)
                                             .require();
                                     total += estimate_seconds(dev, p);
                                 }
                                 return total /
                                        static_cast<double>(order);
                             });
        }
        {
            auto cost = std::make_shared<KernelCost>(kernel_cost(
                Kernel::kMttkrp, Format::kHicoo, stats0, options.rank));
            runner.run_trial(entry, Kernel::kMttkrp, Format::kHicoo, cost,
                             [ctx, dev, rank] {
                                 const CooTensor& x = ctx->entry->tensor;
                                 const Size order = x.order();
                                 double total = 0;
                                 for (Size mode = 0; mode < order;
                                      ++mode) {
                                     FactorList factors = ctx->factors();
                                     DenseMatrix out(x.dim(mode), rank);
                                     LaunchProfile p = mttkrp_gpu_hicoo(
                                         ctx->hx, factors, mode, out);
                                     if (validate::
                                             kernel_checks_enabled())
                                         validate::diff_mttkrp(
                                             x, factors, mode, out)
                                             .require();
                                     total += estimate_seconds(dev, p);
                                 }
                                 return total /
                                        static_cast<double>(order);
                             });
        }
    }
    maybe_export_trace(
        (options.journal_stem.empty() ? std::string("pasta")
                                      : options.journal_stem) +
        ".gpu_" + sanitize_tag(device.name));
    return runner.take_result();
}

void
print_figure(const std::string& title, const std::vector<MeasuredRun>& runs,
             const MachineSpec& platform)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(GFLOPS per tensor; 'roof' is the paper's red Roofline "
                "performance line: OI x ERT-DRAM bandwidth of %s; 'skip' "
                "marks trials the harness abandoned)\n",
                platform.name.c_str());
    const Kernel kernels[5] = {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                               Kernel::kTtm, Kernel::kMttkrp};
    for (Kernel kernel : kernels) {
        std::printf("\n-- %s --\n", kernel_name(kernel));
        std::printf("%-10s %12s %12s %12s %8s %8s\n", "tensor",
                    "COO GFLOPS", "HiCOO GFLOPS", "roof GFLOPS",
                    "COO eff", "HiC eff");
        // Collect per-tensor rows preserving suite order; a tensor with
        // either series present gets a row (missing cells say "skip").
        std::vector<std::string> ids;
        for (const auto& run : runs) {
            if (run.kernel != kernel)
                continue;
            bool seen = false;
            for (const auto& id : ids)
                seen = seen || id == run.tensor_id;
            if (!seen)
                ids.push_back(run.tensor_id);
        }
        for (const auto& id : ids) {
            const MeasuredRun* coo = nullptr;
            const MeasuredRun* hicoo = nullptr;
            for (const auto& run : runs) {
                if (run.kernel != kernel || run.tensor_id != id)
                    continue;
                (run.format == Format::kCoo ? coo : hicoo) = &run;
            }
            const MeasuredRun* any = coo ? coo : hicoo;
            char coo_g[32], hic_g[32], coo_e[32], hic_e[32];
            if (coo) {
                std::snprintf(coo_g, sizeof(coo_g), "%.3f",
                              run_gflops(*coo));
                std::snprintf(coo_e, sizeof(coo_e), "%.0f%%",
                              100.0 * run_efficiency(*coo, platform));
            } else {
                std::snprintf(coo_g, sizeof(coo_g), "skip");
                std::snprintf(coo_e, sizeof(coo_e), "skip");
            }
            if (hicoo) {
                std::snprintf(hic_g, sizeof(hic_g), "%.3f",
                              run_gflops(*hicoo));
                std::snprintf(hic_e, sizeof(hic_e), "%.0f%%",
                              100.0 * run_efficiency(*hicoo, platform));
            } else {
                std::snprintf(hic_g, sizeof(hic_g), "skip");
                std::snprintf(hic_e, sizeof(hic_e), "skip");
            }
            const double roof = run_roofline_gflops(*any, platform);
            std::printf("%-10s %12s %12s %12.3f %8s %8s\n", id.c_str(),
                        coo_g, hic_g, roof, coo_e, hic_e);
        }
    }
}

void
print_failure_summary(const SuiteResult& result)
{
    if (result.resumed > 0)
        std::printf("\n[resume] %zu trial(s) restored from the run "
                    "journal (not re-measured)\n",
                    result.resumed);
    if (result.complete()) {
        std::printf("\nAll trials completed (%zu measurements).\n",
                    result.runs.size());
        return;
    }
    std::printf("\n!! %zu trial(s) skipped or failed (%zu completed):\n",
                result.failures.size(), result.runs.size());
    std::printf("%-10s %-8s %-7s %-10s %8s  %s\n", "tensor", "kernel",
                "format", "status", "attempts", "error");
    for (const auto& f : result.failures)
        std::printf("%-10s %-8s %-7s %-10s %8d  %s\n", f.tensor_id.c_str(),
                    f.kernel.c_str(), f.format.c_str(),
                    f.failure_class.empty() ? "failed"
                                            : f.failure_class.c_str(),
                    f.attempts, f.error.c_str());
    std::printf("Re-run the same binary to retry just the failed trials "
                "(completed ones resume from the journal).\n");
}

void
export_csv(const std::string& path, const std::vector<MeasuredRun>& runs,
           const MachineSpec& platform)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write CSV " << path;
        return;
    }
    std::fprintf(f,
                 "tensor,kernel,format,seconds,gflops,roofline_gflops,"
                 "efficiency,variant,obs_flops,obs_bytes,obs_ai,"
                 "roofline_pct,mem_peak\n");
    for (const auto& run : runs) {
        std::string variant = run.variant;
        for (auto& c : variant)
            if (c == ',' || c == '\n')
                c = ';';
        std::fprintf(f, "%s,%s,%s,%.9g,%.6g,%.6g,%.6g,%s,%.6g,%.6g,"
                        "%.6g,%.6g,%.6g\n",
                     run.tensor_id.c_str(), kernel_name(run.kernel),
                     format_name(run.format), run.seconds,
                     run_gflops(run),
                     run_roofline_gflops(run, platform),
                     run_efficiency(run, platform), variant.c_str(),
                     run.obs_flops, run.obs_bytes, run_ai(run),
                     run_roofline_pct(run, platform), run.mem_peak);
    }
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << path;
}

void
export_failures_csv(const std::string& path,
                    const std::vector<TrialFailure>& failures)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        PASTA_LOG_WARN << "cannot write CSV " << path;
        return;
    }
    std::fprintf(f, "tensor,kernel,format,class,timed_out,attempts,"
                    "error\n");
    for (const auto& fail : failures) {
        std::string error = fail.error;
        for (auto& c : error)
            if (c == ',' || c == '\n')
                c = ';';
        std::fprintf(f, "%s,%s,%s,%s,%d,%d,%s\n", fail.tensor_id.c_str(),
                     fail.kernel.c_str(), fail.format.c_str(),
                     fail.failure_class.c_str(), fail.timed_out ? 1 : 0,
                     fail.attempts, error.c_str());
    }
    std::fclose(f);
    PASTA_LOG_INFO << "wrote " << path;
}

void
maybe_export_trace(const std::string& stem)
{
    if (!obs::spans_enabled())
        return;
    const char* dir = std::getenv("PASTA_TRACE_DIR");
    if (!dir || !*dir)
        dir = std::getenv("PASTA_CSV_DIR");
    if (!dir || !*dir)
        dir = ".";
    obs::write_chrome_trace(std::string(dir) + "/" + stem +
                            ".trace.json");
    obs::write_spans_jsonl(std::string(dir) + "/" + stem +
                           ".spans.jsonl");
}

void
maybe_export_csv(const std::string& stem,
                 const std::vector<MeasuredRun>& runs,
                 const MachineSpec& platform)
{
    const char* dir = std::getenv("PASTA_CSV_DIR");
    if (!dir || !*dir)
        return;
    export_csv(std::string(dir) + "/" + stem + ".csv", runs, platform);
}

void
maybe_export_csv(const std::string& stem, const SuiteResult& result,
                 const MachineSpec& platform)
{
    const char* dir = std::getenv("PASTA_CSV_DIR");
    if (!dir || !*dir)
        return;
    export_csv(std::string(dir) + "/" + stem + ".csv", result.runs,
               platform);
    if (!result.failures.empty())
        export_failures_csv(
            std::string(dir) + "/" + stem + "_failures.csv",
            result.failures);
}

void
print_averages(const std::vector<MeasuredRun>& runs,
               const MachineSpec& platform)
{
    std::printf("\n-- per-kernel averages on %s --\n",
                platform.name.c_str());
    std::printf("%-8s %-7s %12s %12s %12s %10s\n", "kernel", "format",
                "mean GFLOPS", "min", "max", "mean eff");
    const Kernel kernels[5] = {Kernel::kTew, Kernel::kTs, Kernel::kTtv,
                               Kernel::kTtm, Kernel::kMttkrp};
    for (Kernel kernel : kernels) {
        for (Format format : {Format::kCoo, Format::kHicoo}) {
            const EfficiencySummary s =
                summarize(runs, kernel, format, platform);
            std::printf("%-8s %-7s %12.3f %12.3f %12.3f %9.0f%%\n",
                        kernel_name(kernel), format_name(format),
                        s.mean_gflops, s.min_gflops, s.max_gflops,
                        100.0 * s.mean_efficiency);
        }
    }
}

}  // namespace pasta::bench
