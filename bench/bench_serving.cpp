/// \file
/// Multi-tenant serving benchmark (src/serve end to end).
///
/// The workload is the ROADMAP's serving traffic shape: thousands of
/// small TTV/MTTKRP requests against a small corpus of tiny tensors,
/// where plan build / format conversion dominates the kernel itself and
/// the plan cache is what turns that from per-request into per-tensor
/// work.  Three phases run the *same deterministic job list*:
///
///   nocache  closed-loop flood, plan cache off — the baseline
///   cache    closed-loop flood, plan cache on  — steady-state
///            throughput; compared job-by-job against the nocache
///            checksums (the bit-identity witness) and against its
///            throughput (PASTA_SERVE_MIN_SPEEDUP gates the ratio)
///   poisson  open-loop Poisson arrivals at PASTA_SERVE_RATE jobs/s
///            (default: 60% of the measured cached throughput) —
///            latency under load: p50/p95/p99, queue depth, shedding
///
/// Every phase prints per-(kernel, format) throughput, latency
/// percentiles, and cache hit rate, plus an accounting line asserting
/// that every accepted job reached exactly one terminal state; rows go
/// to $PASTA_CSV_DIR/serving.csv (variant = phase) for
/// scripts/bench_compare.py, and a summary line per phase goes to the
/// JSONL journal.  With PASTA_FAULT=kernel.run:... armed this doubles
/// as the chaos harness: injected faults fail individual jobs, the
/// accounting still balances, and the binary exits 0 unless jobs were
/// lost (scripts/check_serve.sh runs exactly that).
///
/// Extra environment (on top of the bench_common set, all strictly
/// validated):
///   PASTA_SERVE_JOBS         jobs per phase (default 2000)
///   PASTA_SERVE_TENSORS      corpus size (default 8)
///   PASTA_SERVE_NNZ          nnz per corpus tensor (default 16384)
///   PASTA_SERVE_RATE         poisson arrival rate, jobs/s (0 skips the
///                            phase; default: auto from cached phase)
///   PASTA_SERVE_MIN_SPEEDUP  minimum cache-on / cache-off throughput
///                            ratio (0 = report only; default 0)
///   PASTA_SERVE_WORKERS / _QUEUE / _CACHE_BYTES / _JOB_THREADS
///                            engine knobs, see src/serve/job.hpp
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/membudget.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "harness/journal.hpp"
#include "obs/metrics.hpp"
#include "serve/executor.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace pasta;
using serve::ServeFormat;
using serve::ServeJob;
using serve::ServeKernel;

long
env_long(const char* name, long fallback, long lo, long hi)
{
    const char* s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    PASTA_CHECK_MSG(*end == '\0' && v >= lo && v <= hi,
                    name << "='" << s << "' must be an integer in [" << lo
                         << ", " << hi << "]");
    return v;
}

double
env_double(const char* name, double fallback, double lo, double hi)
{
    const char* s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    PASTA_CHECK_MSG(*end == '\0' && v >= lo && v <= hi,
                    name << "='" << s << "' must be a number in [" << lo
                         << ", " << hi << "]");
    return v;
}

/// The immutable description one job is built from in every phase: the
/// job list is a pure function of the config, so nocache and cache
/// phases execute byte-identical requests.
struct JobSpec {
    Size tensor = 0;
    ServeKernel kernel = ServeKernel::kTtv;
    ServeFormat format = ServeFormat::kCoo;
    Size mode = 0;
    std::uint64_t operand_seed = 0;
};

struct Corpus {
    std::vector<std::shared_ptr<const CooTensor>> tensors;
    std::vector<std::uint64_t> fingerprints;
};

Corpus
make_corpus(Size count, Size nnz)
{
    Corpus corpus;
    Rng rng(0x5eedc0de);
    for (Size t = 0; t < count; ++t) {
        // Varied tiny 3-order shapes so modes/fibers differ per tensor.
        const std::vector<Index> dims = {
            static_cast<Index>(48 + 16 * (t % 4)),
            static_cast<Index>(40 + 8 * (t % 3)),
            static_cast<Index>(32 + 8 * (t % 5))};
        auto tensor = std::make_shared<CooTensor>(
            CooTensor::random(dims, nnz, rng));
        corpus.fingerprints.push_back(serve::tensor_fingerprint(*tensor));
        corpus.tensors.push_back(std::move(tensor));
    }
    return corpus;
}

std::vector<JobSpec>
make_specs(Size jobs, const Corpus& corpus)
{
    std::vector<JobSpec> specs;
    specs.reserve(jobs);
    Rng rng(0x0b5e55ed);
    for (Size i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.tensor = rng.next_below(corpus.tensors.size());
        // Mix: 30% TTV/COO, 30% TTV/HiCOO, 30% MTTKRP/HiCOO (all
        // cache-served), 10% MTTKRP/COO (planless — the cacheless
        // control group inside every phase).
        const std::uint64_t pick = rng.next_below(10);
        if (pick < 3) {
            spec.kernel = ServeKernel::kTtv;
            spec.format = ServeFormat::kCoo;
        } else if (pick < 6) {
            spec.kernel = ServeKernel::kTtv;
            spec.format = ServeFormat::kHicoo;
        } else if (pick < 9) {
            spec.kernel = ServeKernel::kMttkrp;
            spec.format = ServeFormat::kHicoo;
        } else {
            spec.kernel = ServeKernel::kMttkrp;
            spec.format = ServeFormat::kCoo;
        }
        spec.mode =
            rng.next_below(corpus.tensors[spec.tensor]->order());
        spec.operand_seed = 0x700d0000ULL + i;
        specs.push_back(spec);
    }
    return specs;
}

/// Everything one phase produced, for reporting and cross-phase checks.
struct PhaseResult {
    std::string variant;
    double wall = 0;
    std::vector<std::shared_ptr<ServeJob>> jobs;
    std::vector<bool> accepted;
    serve::Scheduler::Stats sched;
    serve::PlanCache::Stats cache;
    double mem_peak = 0;
    std::uint64_t refused = 0;  ///< open-loop submissions shed at admission

    std::uint64_t lost() const
    {
        return sched.submitted - sched.done - sched.failed;
    }
    double jobs_per_sec() const
    {
        return wall > 0 ? static_cast<double>(sched.done) / wall : 0;
    }
};

PhaseResult
run_phase(const std::string& variant, const std::vector<JobSpec>& specs,
          const Corpus& corpus, serve::ServeOptions options,
          double poisson_rate)
{
    PhaseResult result;
    result.variant = variant;
    result.jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const JobSpec& spec = specs[i];
        auto job = std::make_shared<ServeJob>();
        job->id = i;
        job->tensor = corpus.tensors[spec.tensor];
        job->fingerprint = corpus.fingerprints[spec.tensor];
        job->kernel = spec.kernel;
        job->format = spec.format;
        job->mode = spec.mode;
        job->operand_seed = spec.operand_seed;
        result.jobs.push_back(std::move(job));
    }
    result.accepted.assign(specs.size(), false);

    membudget::MemGovernor::instance().reset_peak();
    serve::Executor executor(options);
    serve::Scheduler scheduler(options, executor);

    Timer timer;
    timer.start();
    if (poisson_rate <= 0) {
        // Closed-loop flood: backpressure (shed) means wait and resubmit.
        for (std::size_t i = 0; i < result.jobs.size(); ++i) {
            while (!scheduler.submit(result.jobs[i]))
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            result.accepted[i] = true;
        }
    } else {
        // Open loop: exponential inter-arrival gaps, submissions never
        // wait for the system — an overloaded engine sheds.
        Rng arrivals(0xa221e5);
        auto next = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < result.jobs.size(); ++i) {
            const double u = arrivals.next_double();
            next += std::chrono::nanoseconds(static_cast<std::int64_t>(
                -std::log(1.0 - u) / poisson_rate * 1e9));
            std::this_thread::sleep_until(next);
            result.accepted[i] = scheduler.submit(result.jobs[i]);
            if (!result.accepted[i])
                ++result.refused;
        }
    }
    scheduler.drain();
    result.wall = timer.elapsed_seconds();
    result.sched = scheduler.stats();
    scheduler.stop();
    if (executor.cache())
        result.cache = executor.cache()->stats();
    result.mem_peak =
        static_cast<double>(membudget::MemGovernor::instance().peak());
    return result;
}

/// Percentile in ms out of a µs-valued histogram sample.  Bounded
/// memory: O(nonzero buckets) per group instead of one double per job,
/// with relative error capped by the bucket width (~3.125%, see
/// obs/metrics.hpp).
double
hist_percentile_ms(const obs::metrics::HistSample& sample, double q)
{
    return sample.percentile(q) / 1e3;
}

/// Per-(kernel, format) aggregate of one phase.
struct GroupRow {
    std::string kernel;
    std::string format;
    std::uint64_t jobs = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t hits = 0;
    double p50_ms = 0, p95_ms = 0, p99_ms = 0;

    double hit_rate() const
    {
        return done ? static_cast<double>(hits) /
                          static_cast<double>(done)
                    : 0;
    }
};

std::vector<GroupRow>
summarize(const PhaseResult& phase)
{
    std::map<std::pair<int, int>, GroupRow> groups;
    std::map<std::pair<int, int>, std::unique_ptr<obs::metrics::Histogram>>
        latencies;
    obs::metrics::Histogram all("bench.latency_us");
    GroupRow total;
    total.kernel = "*";
    total.format = "*";
    for (std::size_t i = 0; i < phase.jobs.size(); ++i) {
        if (!phase.accepted[i])
            continue;
        const ServeJob& job = *phase.jobs[i];
        const std::pair<int, int> key(static_cast<int>(job.kernel),
                                      static_cast<int>(job.format));
        GroupRow& row = groups[key];
        row.kernel = serve::serve_kernel_name(job.kernel);
        row.format = serve::serve_format_name(job.format);
        ++row.jobs;
        ++total.jobs;
        if (job.current_state() == serve::JobState::kDone) {
            ++row.done;
            ++total.done;
            if (job.cache_hit) {
                ++row.hits;
                ++total.hits;
            }
            const std::uint64_t us = static_cast<std::uint64_t>(
                job.total_seconds() * 1e6);
            auto& hist = latencies[key];
            if (!hist)
                hist = std::make_unique<obs::metrics::Histogram>(
                    row.kernel + "/" + row.format);
            hist->record(us);
            all.record(us);
        } else {
            ++row.failed;
            ++total.failed;
        }
    }
    std::vector<GroupRow> rows;
    for (auto& [key, row] : groups) {
        if (auto it = latencies.find(key); it != latencies.end()) {
            const obs::metrics::HistSample sample = it->second->snapshot();
            row.p50_ms = hist_percentile_ms(sample, 0.50);
            row.p95_ms = hist_percentile_ms(sample, 0.95);
            row.p99_ms = hist_percentile_ms(sample, 0.99);
        }
        rows.push_back(row);
    }
    const obs::metrics::HistSample sample = all.snapshot();
    total.p50_ms = hist_percentile_ms(sample, 0.50);
    total.p95_ms = hist_percentile_ms(sample, 0.95);
    total.p99_ms = hist_percentile_ms(sample, 0.99);
    rows.push_back(total);
    return rows;
}

void
print_phase(const PhaseResult& phase, const std::vector<GroupRow>& rows)
{
    std::printf("\nphase %-8s %6llu jobs in %.3f s -> %.0f jobs/s  "
                "(steals %llu, max queue %llu, oom retries %llu)\n",
                phase.variant.c_str(),
                static_cast<unsigned long long>(phase.sched.submitted),
                phase.wall, phase.jobs_per_sec(),
                static_cast<unsigned long long>(phase.sched.stolen),
                static_cast<unsigned long long>(
                    phase.sched.max_queue_depth),
                static_cast<unsigned long long>(phase.sched.oom_retries));
    std::printf("  %-8s %-6s %7s %7s %7s %9s %9s %9s %9s\n", "kernel",
                "format", "jobs", "done", "failed", "hit_rate", "p50_ms",
                "p95_ms", "p99_ms");
    for (const auto& row : rows)
        std::printf("  %-8s %-6s %7llu %7llu %7llu %8.1f%% %9.3f %9.3f "
                    "%9.3f\n",
                    row.kernel.c_str(), row.format.c_str(),
                    static_cast<unsigned long long>(row.jobs),
                    static_cast<unsigned long long>(row.done),
                    static_cast<unsigned long long>(row.failed),
                    100.0 * row.hit_rate(), row.p50_ms, row.p95_ms,
                    row.p99_ms);
    if (phase.cache.hits + phase.cache.misses)
        std::printf("  cache: %llu hits / %llu misses (%.1f%%), "
                    "%llu evictions, %llu entries, %llu resident bytes\n",
                    static_cast<unsigned long long>(phase.cache.hits),
                    static_cast<unsigned long long>(phase.cache.misses),
                    100.0 * phase.cache.hit_rate(),
                    static_cast<unsigned long long>(phase.cache.evictions),
                    static_cast<unsigned long long>(phase.cache.entries),
                    static_cast<unsigned long long>(
                        phase.cache.resident_bytes));
    std::printf("  accounting[%s]: accepted=%llu done=%llu failed=%llu "
                "shed=%llu refused=%llu lost=%llu\n",
                phase.variant.c_str(),
                static_cast<unsigned long long>(phase.sched.submitted),
                static_cast<unsigned long long>(phase.sched.done),
                static_cast<unsigned long long>(phase.sched.failed),
                static_cast<unsigned long long>(phase.sched.shed),
                static_cast<unsigned long long>(phase.refused),
                static_cast<unsigned long long>(phase.lost()));
}

void
export_csv(const std::string& path, const std::vector<PhaseResult>& phases,
           const std::vector<std::vector<GroupRow>>& summaries)
{
    std::ofstream out(path);
    if (!out) {
        PASTA_LOG_WARN << "cannot write " << path;
        return;
    }
    out << "tensor,kernel,format,variant,jobs,done,failed,shed,"
           "jobs_per_sec,p50_ms,p95_ms,p99_ms,cache_hit_rate,steals,"
           "max_queue_depth,mem_peak\n";
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const PhaseResult& phase = phases[p];
        for (const GroupRow& row : summaries[p]) {
            const bool is_total = row.kernel == "*";
            const double rate =
                phase.wall > 0
                    ? static_cast<double>(row.done) / phase.wall
                    : 0;
            out << "serve_corpus," << row.kernel << ',' << row.format
                << ',' << phase.variant << ',' << row.jobs << ','
                << row.done << ',' << row.failed << ','
                << (is_total ? phase.sched.shed + phase.refused : 0)
                << ',' << rate << ',' << row.p50_ms << ',' << row.p95_ms
                << ',' << row.p99_ms << ',' << row.hit_rate() << ','
                << (is_total ? phase.sched.stolen : 0) << ','
                << (is_total ? phase.sched.max_queue_depth : 0) << ','
                << (is_total ? phase.mem_peak : 0) << '\n';
        }
    }
    std::printf("\nCSV written to %s\n", path.c_str());
}

void
journal_phase(harness::RunJournal& journal, const PhaseResult& phase)
{
    if (!journal.enabled())
        return;
    harness::JournalEntry entry;
    entry.tensor_id = "serve_corpus";
    entry.kernel = "SERVE";
    entry.format = phase.variant;
    entry.ok = phase.lost() == 0;
    entry.seconds = phase.wall;
    entry.attempts = 1;
    entry.variant = phase.variant;
    entry.obs_flops = phase.jobs_per_sec();  // rate, for the record
    entry.mem_peak = phase.mem_peak;
    entry.error = entry.ok ? "" : "jobs lost";
    entry.failure_class = entry.ok ? "" : "error";
    journal.append(entry);
}

}  // namespace

int
main()
{
    using namespace pasta;
    const bench::BenchOptions bench_options = bench::options_from_env();

    const Size jobs = static_cast<Size>(
        env_long("PASTA_SERVE_JOBS", 2000, 1, 100000000));
    const Size tensors = static_cast<Size>(
        env_long("PASTA_SERVE_TENSORS", 8, 1, 100000));
    const Size nnz = static_cast<Size>(
        env_long("PASTA_SERVE_NNZ", 16384, 8, 1 << 28));
    const double rate_env =
        env_double("PASTA_SERVE_RATE", -1.0, -1.0, 1e12);
    const double min_speedup =
        env_double("PASTA_SERVE_MIN_SPEEDUP", 0.0, 0.0, 1e6);

    serve::ServeOptions serve_options = serve::ServeOptions::from_env();
    serve_options.block_bits = bench_options.block_bits;

    std::printf("serving corpus: %zu tensors x %zu nnz, %zu jobs/phase, "
                "cache budget %llu bytes\n",
                tensors, nnz, jobs,
                static_cast<unsigned long long>(
                    serve_options.cache_bytes));
    const Corpus corpus = make_corpus(tensors, nnz);
    const std::vector<JobSpec> specs = make_specs(jobs, corpus);

    harness::RunJournal journal;
    if (bench_options.journal_enabled) {
        std::error_code ec;
        std::filesystem::create_directories(bench_options.cache_dir, ec);
        journal = harness::RunJournal(bench_options.cache_dir +
                                      "/serving.journal.jsonl");
    }

    std::vector<PhaseResult> phases;
    std::vector<std::vector<GroupRow>> summaries;

    // ---- phase 1: cache off (baseline) ----
    serve::ServeOptions nocache = serve_options;
    nocache.cache_bytes = 0;
    phases.push_back(run_phase("nocache", specs, corpus, nocache, 0));
    summaries.push_back(summarize(phases.back()));
    print_phase(phases.back(), summaries.back());
    journal_phase(journal, phases.back());

    // ---- phase 2: cache on, same jobs ----
    phases.push_back(run_phase("cache", specs, corpus, serve_options, 0));
    summaries.push_back(summarize(phases.back()));
    print_phase(phases.back(), summaries.back());
    journal_phase(journal, phases.back());

    // Bit-identity: the cache must not change a single output bit.
    std::uint64_t compared = 0, mismatched = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const ServeJob& a = *phases[0].jobs[i];
        const ServeJob& b = *phases[1].jobs[i];
        if (a.current_state() != serve::JobState::kDone ||
            b.current_state() != serve::JobState::kDone)
            continue;
        ++compared;
        if (a.result_checksum != b.result_checksum)
            ++mismatched;
    }
    std::printf("\nbit-identity: %llu jobs compared cached vs uncached, "
                "%llu mismatched\n",
                static_cast<unsigned long long>(compared),
                static_cast<unsigned long long>(mismatched));

    const double speedup =
        phases[0].jobs_per_sec() > 0
            ? phases[1].jobs_per_sec() / phases[0].jobs_per_sec()
            : 0;
    std::printf("cache speedup: %.2fx (%.0f -> %.0f jobs/s)%s\n", speedup,
                phases[0].jobs_per_sec(), phases[1].jobs_per_sec(),
                min_speedup > 0 ? (speedup >= min_speedup ? "  [gate ok]"
                                                          : "  [gate FAILED]")
                                : "");

    // ---- phase 3: open-loop Poisson arrivals ----
    double rate = rate_env;
    if (rate < 0)
        rate = 0.6 * phases[1].jobs_per_sec();  // auto: stable territory
    if (rate > 0) {
        phases.push_back(
            run_phase("poisson", specs, corpus, serve_options, rate));
        summaries.push_back(summarize(phases.back()));
        std::printf("\npoisson arrivals at %.0f jobs/s (open loop)",
                    rate);
        print_phase(phases.back(), summaries.back());
        journal_phase(journal, phases.back());
    }

    if (const char* dir = std::getenv("PASTA_CSV_DIR")) {
        if (*dir) {
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
            export_csv(std::string(dir) + "/serving.csv", phases,
                       summaries);
        }
    }
    bench::maybe_export_trace("serving");

    bool bad = false;
    for (const PhaseResult& phase : phases) {
        if (phase.lost() != 0) {
            std::fprintf(stderr, "FAIL: phase %s lost %llu job(s)\n",
                         phase.variant.c_str(),
                         static_cast<unsigned long long>(phase.lost()));
            bad = true;
        }
    }
    if (mismatched != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu cached results differ from uncached\n",
                     static_cast<unsigned long long>(mismatched));
        bad = true;
    }
    if (min_speedup > 0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: cache speedup %.2fx below required %.2fx\n",
                     speedup, min_speedup);
        bad = true;
    }
    return bad ? 1 : 0;
}
