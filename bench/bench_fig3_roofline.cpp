/// \file
/// Regenerates Figure 3: Roofline models of the four platforms (ERT-DRAM,
/// ERT-LLC, and theoretical roofs) with the five kernels' operational
/// intensities marked, plus the same plot for the measured host.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/ert.hpp"
#include "roofline/machine.hpp"
#include "roofline/roofline.hpp"

using namespace pasta;

namespace {

/// Kernel OIs of Table I's third-order cubical analysis (the markers the
/// paper overlays on every roofline).
struct KernelOi {
    const char* name;
    double oi;
};

constexpr KernelOi kKernelOis[] = {
    {"TEW", 1.0 / 12}, {"TS", 1.0 / 8},      {"TTV", 1.0 / 6},
    {"TTM", 0.5},      {"MTTKRP", 0.25},
};

void
print_platform(const MachineSpec& spec)
{
    std::printf("\n=== Roofline: %s ===\n", spec.name.c_str());
    std::printf("ridge point (ERT-DRAM): OI = %.2f flops/byte\n",
                ridge_point(spec.peak_sp_gflops, spec.ert_dram_gbs));
    std::printf("%-10s %14s %14s %16s\n", "OI", "ERT-DRAM GF/s",
                "ERT-LLC GF/s", "theoretical GF/s");
    for (const auto& point :
         sample_roofline(spec.peak_sp_gflops, spec.ert_dram_gbs, 0.01,
                         256.0, 18)) {
        std::printf("%-10.4f %14.2f %14.2f %16.2f\n", point.oi,
                    point.gflops,
                    attainable_gflops(spec.peak_sp_gflops,
                                      spec.ert_llc_gbs, point.oi),
                    attainable_gflops(spec.peak_sp_gflops,
                                      spec.mem_bw_gbs, point.oi));
    }
    std::printf("kernel OI markers on the ERT-DRAM roof:\n");
    for (const auto& kernel : kKernelOis)
        std::printf("  %-8s OI %-7.4f -> Roofline performance %10.2f "
                    "GFLOPS\n",
                    kernel.name, kernel.oi,
                    roofline_performance_gflops(spec, kernel.oi));
}

}  // namespace

int
main()
{
    for (const auto& spec : paper_platforms())
        print_platform(spec);

    std::printf("\nmeasuring host roofs with ERT...\n");
    ErtOptions options;
    options.max_bytes = 128 * 1024 * 1024;
    options.seconds_per_point = 0.02;
    MachineSpec host = host_machine_spec(run_ert(options));
    host.peak_sp_gflops = std::max(host.peak_sp_gflops, 1.0);
    print_platform(host);

    std::printf("\nAll five kernels fall far left of every ridge point: "
                "every sparse tensor kernel is memory-bound on all four "
                "platforms (paper §V-B).\n");
    return 0;
}
