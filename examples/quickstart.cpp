/// \file
/// Quickstart: generate a sparse tensor, convert it between formats, and
/// run all five benchmark kernels through the public API.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "gen/powerlaw.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"

int
main()
{
    using namespace pasta;

    // 1. Generate a power-law third-order tensor (paper §IV-B2).
    PowerLawConfig config;
    config.dims = {4096, 4096, 64};
    config.nnz = 50'000;
    config.uniform_mode = {false, false, true};
    config.seed = 2020;
    CooTensor x = generate_powerlaw(config);
    std::printf("generated: %s (%.1f KB in COO)\n", x.describe().c_str(),
                x.storage_bytes() / 1024.0);

    // 2. Convert to HiCOO and compare storage (paper §III-C).
    HiCooTensor hx = coo_to_hicoo(x);
    std::printf("HiCOO:     %s (%.1f KB)\n", hx.describe().c_str(),
                hx.storage_bytes() / 1024.0);

    // 3. TEW: element-wise add against a same-pattern sibling.
    Rng rng(7);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float();
    CooTensor z = tew_coo(x, y, EwOp::kAdd);
    std::printf("TEW  add:  %zu output non-zeros\n", z.nnz());

    // 4. TS: scale every stored value.
    CooTensor scaled = ts_coo(x, TsOp::kMul, 0.5f);
    std::printf("TS   mul:  first value %.4f -> %.4f\n", x.value(0),
                scaled.value(0));

    // 5. TTV: contract mode 2 with a dense vector.
    DenseVector v = DenseVector::random(x.dim(2), rng);
    CooTensor ttv_out = ttv_coo(x, v, 2);
    std::printf("TTV:       order %zu output, %zu non-zeros\n",
                ttv_out.order(), ttv_out.nnz());

    // 6. TTM: mode-2 product with a rank-16 matrix (semi-sparse output).
    DenseMatrix u = DenseMatrix::random(x.dim(2), 16, rng);
    ScooTensor ttm_out = ttm_coo(x, u, 2);
    std::printf("TTM:       %s\n", ttm_out.describe().c_str());

    // 7. MTTKRP: the CP-decomposition workhorse, on both formats.
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out_coo(x.dim(0), 16);
    DenseMatrix out_hicoo(x.dim(0), 16);
    mttkrp_coo(x, factors, 0, out_coo);
    mttkrp_hicoo(hx, factors, 0, out_hicoo);
    std::printf("MTTKRP:    COO vs HiCOO max diff %.2e\n",
                max_abs_diff(out_coo, out_hicoo));

    std::printf("quickstart done\n");
    return 0;
}
