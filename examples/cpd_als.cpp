/// \file
/// CP decomposition (CP-ALS) on a Table II dataset, exercising the
/// `methods/cpd` API with either MTTKRP backend.
///
/// Usage: cpd_als [dataset=irrS] [rank=8] [sweeps=10] [format=coo|hicoo]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "gen/datasets.hpp"
#include "methods/cpd.hpp"

int
main(int argc, char** argv)
{
    using namespace pasta;
    const std::string dataset = argc > 1 ? argv[1] : "irrS";
    CpdOptions options;
    options.rank = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
    options.max_sweeps = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
    if (argc > 4 && std::strcmp(argv[4], "hicoo") == 0)
        options.mttkrp_format = Format::kHicoo;

    try {
        const CooTensor x =
            synthesize_dataset(find_dataset(dataset), 1e-3);
        std::printf("CP-ALS on %s: %s, rank %zu, %s MTTKRP\n",
                    dataset.c_str(), x.describe().c_str(), options.rank,
                    format_name(options.mttkrp_format));
        const CpdResult result = cp_als(x, options);
        for (Size s = 0; s < result.fit_history.size(); ++s)
            std::printf("  sweep %2zu: fit %.6f\n", s + 1,
                        result.fit_history[s]);
        std::printf("final fit %.6f after %zu sweeps; lambda[0..%zu] =",
                    result.fit, result.sweeps, options.rank - 1);
        for (double l : result.lambdas)
            std::printf(" %.3f", l);
        std::printf("\ncpd_als done\n");
    } catch (const PastaError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
