/// \file
/// Orthogonal tensor decomposition by the tensor power method, built on
/// the suite's TTV kernel.
///
/// The paper names TTV "a critical computational kernel of the tensor
/// power method" (§II-C).  For a symmetric odeco tensor
///   X = sum_k w_k u_k o u_k o u_k,
/// repeated TTV contraction v <- normalize(X x_2 v x_3 v) converges to the
/// dominant u_k; deflation (X <- X - w u o u o u) then peels components
/// one by one.  This example builds a synthetic odeco tensor, recovers all
/// components, and reports the recovery error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/coo_tensor.hpp"
#include "core/dense.hpp"
#include "kernels/ttv.hpp"

namespace {

using namespace pasta;

double
norm2(const DenseVector& v)
{
    double n = 0.0;
    for (Size i = 0; i < v.size(); ++i)
        n += static_cast<double>(v[i]) * v[i];
    return std::sqrt(n);
}

void
normalize(DenseVector& v)
{
    const double n = norm2(v);
    for (Size i = 0; i < v.size(); ++i)
        v[i] = static_cast<Value>(v[i] / n);
}

/// One power iteration: v <- normalize(X x_2 v x_3 v).
DenseVector
power_step(const CooTensor& x, const DenseVector& v)
{
    CooTensor first = ttv_coo(x, v, 2);
    CooTensor second = ttv_coo(first, v, 1);
    DenseVector next(v.size(), 0);
    for (Size p = 0; p < second.nnz(); ++p)
        next[second.index(0, p)] = second.value(p);
    normalize(next);
    return next;
}

/// Rayleigh-style eigenvalue estimate w = X x_1 v x_2 v x_3 v.
double
eigenvalue(const CooTensor& x, const DenseVector& v)
{
    CooTensor first = ttv_coo(x, v, 2);
    CooTensor second = ttv_coo(first, v, 1);
    double w = 0.0;
    for (Size p = 0; p < second.nnz(); ++p)
        w += static_cast<double>(second.value(p)) * v[second.index(0, p)];
    return w;
}

}  // namespace

int
main(int argc, char** argv)
{
    const Size n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
    const Size k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

    // Build an odeco tensor from k orthonormal components with weights
    // 3, 2.5, 2, ...
    Rng rng(5);
    std::vector<DenseVector> comps;
    for (Size c = 0; c < k; ++c) {
        DenseVector u = DenseVector::random(n, rng);
        for (const auto& prev : comps) {
            double dot = 0.0;
            for (Size i = 0; i < n; ++i)
                dot += static_cast<double>(u[i]) * prev[i];
            for (Size i = 0; i < n; ++i)
                u[i] -= static_cast<Value>(dot) * prev[i];
        }
        normalize(u);
        comps.push_back(u);
    }
    std::vector<double> weights;
    for (Size c = 0; c < k; ++c)
        weights.push_back(3.0 - 0.5 * static_cast<double>(c));

    CooTensor x({static_cast<Index>(n), static_cast<Index>(n),
                 static_cast<Index>(n)});
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < n; ++j) {
            for (Index l = 0; l < n; ++l) {
                double val = 0.0;
                for (Size c = 0; c < k; ++c)
                    val += weights[c] * comps[c][i] * comps[c][j] *
                           comps[c][l];
                if (std::abs(val) > 1e-7)
                    x.append({i, j, l}, static_cast<Value>(val));
            }
        }
    }
    std::printf("tensor power method: %s, %zu planted components\n",
                x.describe().c_str(), k);

    // Recover components by power iteration + deflation.
    CooTensor residual = x;
    for (Size c = 0; c < k; ++c) {
        DenseVector v = DenseVector::random(n, rng);
        normalize(v);
        for (int iter = 0; iter < 30; ++iter)
            v = power_step(residual, v);
        const double w = eigenvalue(residual, v);

        // Match against the planted component with the largest overlap.
        double best = 0.0;
        Size best_c = 0;
        for (Size pc = 0; pc < k; ++pc) {
            double dot = 0.0;
            for (Size i = 0; i < n; ++i)
                dot += static_cast<double>(v[i]) * comps[pc][i];
            if (std::abs(dot) > std::abs(best)) {
                best = dot;
                best_c = pc;
            }
        }
        std::printf(
            "  recovered component %zu: weight %.4f (planted %.4f), "
            "|<v,u_%zu>| = %.6f\n",
            c + 1, w, weights[best_c], best_c, std::abs(best));

        // Deflate: residual <- residual - w v o v o v, rebuilt through a
        // dense scratch cube (n is example-sized).
        std::vector<double> cube(n * n * n, 0.0);
        for (Size p = 0; p < residual.nnz(); ++p)
            cube[(static_cast<Size>(residual.index(0, p)) * n +
                  residual.index(1, p)) *
                     n +
                 residual.index(2, p)] += residual.value(p);
        CooTensor next({static_cast<Index>(n), static_cast<Index>(n),
                        static_cast<Index>(n)});
        for (Index i = 0; i < n; ++i) {
            for (Index j = 0; j < n; ++j) {
                for (Index l = 0; l < n; ++l) {
                    const double val =
                        cube[(static_cast<Size>(i) * n + j) * n + l] -
                        w * v[i] * v[j] * v[l];
                    if (std::abs(val) > 1e-7)
                        next.append({i, j, l}, static_cast<Value>(val));
                }
            }
        }
        residual = next;
    }
    std::printf("tensor_power_method done\n");
    return 0;
}
