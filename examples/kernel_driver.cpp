/// \file
/// Kernel driver CLI: run any of the five kernels on any dataset (or a
/// .tns file) in any format, printing time, GFLOPS, and Table I traffic —
/// the single-command entry point for ad-hoc benchmarking, mirroring how
/// the original PASTA suite's per-kernel drivers are used.
///
/// Usage:
///   kernel_driver <kernel> <dataset-or-.tns> [options]
///     kernel:   tew | ts | ttv | ttm | mttkrp
///     options:  --format coo|hicoo|csf   (default coo)
///               --mode N                 (default: average over modes)
///               --rank R                 (default 16)
///               --scale S                (dataset scale, default 1e-3)
///               --runs K                 (default 5, the paper's count)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/cost_model.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "core/csf_tensor.hpp"
#include "gen/datasets.hpp"
#include "io/tns_io.hpp"
#include "kernels/csf_kernels.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"

namespace {

using namespace pasta;

struct DriverOptions {
    std::string kernel;
    std::string input;
    std::string format = "coo";
    Size mode = kNoMode;
    Size rank = 16;
    double scale = 1e-3;
    Size runs = 5;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: kernel_driver <tew|ts|ttv|ttm|mttkrp> "
                 "<dataset|file.tns> [--format coo|hicoo|csf] [--mode N] "
                 "[--rank R] [--scale S] [--runs K]\n");
    return 2;
}

CooTensor
load_input(const DriverOptions& options)
{
    if (options.input.size() > 4 &&
        options.input.substr(options.input.size() - 4) == ".tns")
        return read_tns_file(options.input);
    return synthesize_dataset(find_dataset(options.input), options.scale);
}

/// Runs one (kernel, mode) measurement; returns {seconds, cost}.
std::pair<double, KernelCost>
run_mode(const DriverOptions& options, const CooTensor& x, Size mode)
{
    Rng rng(7);
    const Size runs = options.runs;
    const bool hicoo = options.format == "hicoo";
    const bool csf = options.format == "csf";
    TensorStats stats = compute_stats(x, mode);
    const Format cost_format = hicoo ? Format::kHicoo : Format::kCoo;

    if (options.kernel == "tew") {
        CooTensor y = x;
        for (auto& v : y.values())
            v = rng.next_float() + 0.5f;
        CooTensor z = x;
        const RunStats t = timed_runs(
            [&] {
                tew_values(EwOp::kAdd, x.values().data(),
                           y.values().data(), z.values().data(), x.nnz());
            },
            runs);
        return {t.mean_seconds,
                kernel_cost(Kernel::kTew, cost_format, stats)};
    }
    if (options.kernel == "ts") {
        CooTensor y = x;
        const RunStats t = timed_runs(
            [&] {
                ts_values(TsOp::kMul, x.values().data(),
                          y.values().data(), x.nnz(), 1.0009f);
            },
            runs);
        return {t.mean_seconds,
                kernel_cost(Kernel::kTs, cost_format, stats)};
    }
    if (options.kernel == "ttv") {
        DenseVector v = DenseVector::random(x.dim(mode), rng);
        const KernelCost cost =
            kernel_cost(Kernel::kTtv, cost_format, stats);
        if (csf) {
            std::vector<Size> order;
            for (Size m = 0; m < x.order(); ++m)
                if (m != mode)
                    order.push_back(m);
            order.push_back(mode);
            const CsfTensor c = CsfTensor::from_coo(x, order);
            const RunStats t = timed_runs(
                [&] {
                    CooTensor out = ttv_csf(c, v, mode);
                    (void)out;
                },
                runs);
            return {t.mean_seconds, cost};
        }
        if (hicoo) {
            HicooTtvPlan plan = ttv_plan_hicoo(x, mode);
            HiCooTensor out = plan.out_pattern;
            const RunStats t = timed_runs(
                [&] { ttv_exec_hicoo(plan, v, out); }, runs);
            return {t.mean_seconds, cost};
        }
        CooTtvPlan plan = ttv_plan_coo(x, mode);
        CooTensor out = plan.out_pattern;
        const RunStats t =
            timed_runs([&] { ttv_exec_coo(plan, v, out); }, runs);
        return {t.mean_seconds, cost};
    }
    if (options.kernel == "ttm") {
        DenseMatrix u = DenseMatrix::random(x.dim(mode), options.rank, rng);
        const KernelCost cost =
            kernel_cost(Kernel::kTtm, cost_format, stats, options.rank);
        if (hicoo) {
            HicooTtmPlan plan = ttm_plan_hicoo(x, mode, options.rank);
            SHiCooTensor out = plan.out_pattern;
            const RunStats t = timed_runs(
                [&] { ttm_exec_hicoo(plan, u, out); }, runs);
            return {t.mean_seconds, cost};
        }
        CooTtmPlan plan = ttm_plan_coo(x, mode, options.rank);
        ScooTensor out = plan.out_pattern;
        const RunStats t =
            timed_runs([&] { ttm_exec_coo(plan, u, out); }, runs);
        return {t.mean_seconds, cost};
    }
    if (options.kernel == "mttkrp") {
        std::vector<DenseMatrix> mats;
        for (Size m = 0; m < x.order(); ++m)
            mats.push_back(
                DenseMatrix::random(x.dim(m), options.rank, rng));
        FactorList factors;
        for (const auto& m : mats)
            factors.push_back(&m);
        DenseMatrix out(x.dim(mode), options.rank);
        const KernelCost cost = kernel_cost(Kernel::kMttkrp, cost_format,
                                            stats, options.rank);
        if (csf) {
            std::vector<Size> order;
            order.push_back(mode);
            for (Size m = 0; m < x.order(); ++m)
                if (m != mode)
                    order.push_back(m);
            const CsfTensor c = CsfTensor::from_coo(x, order);
            const RunStats t = timed_runs(
                [&] { mttkrp_csf(c, factors, mode, out); }, runs);
            return {t.mean_seconds, cost};
        }
        if (hicoo) {
            const HiCooTensor h = coo_to_hicoo(x);
            const RunStats t = timed_runs(
                [&] { mttkrp_hicoo(h, factors, mode, out); }, runs);
            return {t.mean_seconds, cost};
        }
        const RunStats t = timed_runs(
            [&] { mttkrp_coo(x, factors, mode, out); }, runs);
        return {t.mean_seconds, cost};
    }
    throw PastaError("unknown kernel: " + options.kernel);
}

}  // namespace

int
main(int argc, char** argv)
{
    DriverOptions options;
    if (argc < 3)
        return usage();
    options.kernel = argv[1];
    options.input = argv[2];
    for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const char* value = argv[i + 1];
        if (flag == "--format")
            options.format = value;
        else if (flag == "--mode")
            options.mode = std::strtoul(value, nullptr, 10);
        else if (flag == "--rank")
            options.rank = std::strtoul(value, nullptr, 10);
        else if (flag == "--scale")
            options.scale = std::atof(value);
        else if (flag == "--runs")
            options.runs = std::strtoul(value, nullptr, 10);
        else
            return usage();
    }
    if (options.format != "coo" && options.format != "hicoo" &&
        options.format != "csf")
        return usage();
    if (options.format == "csf" && options.kernel != "ttv" &&
        options.kernel != "mttkrp") {
        std::fprintf(stderr,
                     "csf format supports ttv and mttkrp only\n");
        return 2;
    }

    try {
        const CooTensor x = load_input(options);
        std::printf("%s-%s on %s: %s, %zu runs\n", options.format.c_str(),
                    options.kernel.c_str(), options.input.c_str(),
                    x.describe().c_str(), options.runs);
        const bool per_mode = options.kernel == "ttv" ||
                              options.kernel == "ttm" ||
                              options.kernel == "mttkrp";
        double total_seconds = 0;
        KernelCost total_cost;
        Size modes_run = 0;
        const Size first = options.mode == kNoMode ? 0 : options.mode;
        const Size last =
            options.mode == kNoMode ? x.order() : options.mode + 1;
        PASTA_CHECK_MSG(!per_mode || first < x.order(),
                        "mode out of range");
        for (Size mode = first; mode < (per_mode ? last : first + 1);
             ++mode) {
            const auto [seconds, cost] = run_mode(options, x, mode);
            if (per_mode)
                std::printf("  mode %zu: %.4f ms, %.3f GFLOPS\n", mode,
                            seconds * 1e3, gflops(cost.flops, seconds));
            total_seconds += seconds;
            total_cost.flops += cost.flops;
            total_cost.bytes += cost.bytes;
            ++modes_run;
        }
        const double mean_seconds =
            total_seconds / static_cast<double>(modes_run);
        const double mean_flops =
            total_cost.flops / static_cast<double>(modes_run);
        std::printf("mean: %.4f ms, %.3f GFLOPS, OI %.4f flops/byte\n",
                    mean_seconds * 1e3, gflops(mean_flops, mean_seconds),
                    total_cost.oi());
    } catch (const PastaError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
