/// \file
/// Synthetic tensor generator CLI (paper §IV): writes Kronecker or
/// power-law tensors — or any Table II dataset stand-in — to a FROSTT
/// `.tns` file in a reproducible manner.
///
/// Usage:
///   synthetic_datagen kron  <out.tns> <nnz> <dim0> [dim1 ...] [--seed N]
///   synthetic_datagen pl    <out.tns> <nnz> <dim0> [dim1 ...] [--seed N]
///   synthetic_datagen table <out.tns> <dataset-id> [--scale S]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gen/datasets.hpp"
#include "gen/kronecker.hpp"
#include "gen/powerlaw.hpp"
#include "io/tns_io.hpp"

namespace {

using namespace pasta;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  synthetic_datagen kron  <out.tns> <nnz> <dim...> [--seed N]\n"
        "  synthetic_datagen pl    <out.tns> <nnz> <dim...> [--seed N]\n"
        "  synthetic_datagen table <out.tns> <dataset> [--scale S]\n"
        "datasets: r1..r15 (Table IIa stand-ins), s1..s15 / names\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 4)
        return usage();
    const std::string mode = argv[1];
    const std::string out_path = argv[2];

    try {
        CooTensor tensor({1});
        if (mode == "table") {
            double scale = 1e-3;
            for (int i = 4; i + 1 < argc; ++i)
                if (std::strcmp(argv[i], "--scale") == 0)
                    scale = std::atof(argv[i + 1]);
            const DatasetSpec& spec = find_dataset(argv[3]);
            std::printf("generating %s (%s) at scale %g...\n",
                        spec.id.c_str(), spec.name.c_str(), scale);
            tensor = synthesize_dataset(spec, scale);
        } else if (mode == "kron" || mode == "pl") {
            const Size nnz = std::strtoul(argv[3], nullptr, 10);
            std::vector<Index> dims;
            std::uint64_t seed = 1;
            for (int i = 4; i < argc; ++i) {
                if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
                    seed = std::strtoull(argv[++i], nullptr, 10);
                    continue;
                }
                dims.push_back(
                    static_cast<Index>(std::strtoul(argv[i], nullptr, 10)));
            }
            if (dims.empty())
                return usage();
            if (mode == "kron") {
                KroneckerConfig config;
                config.dims = dims;
                config.nnz = nnz;
                config.seed = seed;
                tensor = generate_kronecker(config);
            } else {
                PowerLawConfig config;
                config.dims = dims;
                config.nnz = nnz;
                config.seed = seed;
                tensor = generate_powerlaw(config);
            }
        } else {
            return usage();
        }
        write_tns_file(out_path, tensor);
        std::printf("wrote %s: %s\n", out_path.c_str(),
                    tensor.describe().c_str());
    } catch (const PastaError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
