/// \file
/// Truncated Tucker decomposition (HOOI) on a Table II dataset,
/// exercising the `methods/tucker` API and its TTM-chain.
///
/// Usage: tucker_hooi [dataset=nips4d] [rank=4] [passes=4]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "gen/datasets.hpp"
#include "methods/tucker.hpp"

int
main(int argc, char** argv)
{
    using namespace pasta;
    const std::string dataset = argc > 1 ? argv[1] : "nips4d";
    TuckerOptions options;
    options.rank = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    options.max_passes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

    try {
        const CooTensor x =
            synthesize_dataset(find_dataset(dataset), 3e-4);
        std::printf("Tucker-HOOI on %s: %s, core rank %zu\n",
                    dataset.c_str(), x.describe().c_str(), options.rank);
        const TuckerResult result = tucker_hooi(x, options);
        for (Size p = 0; p < result.core_norm_history.size(); ++p)
            std::printf("  pass %zu: core norm %.5f\n", p + 1,
                        result.core_norm_history[p]);
        std::printf("core: %s\n", result.core.describe().c_str());
        std::printf("tucker_hooi done\n");
    } catch (const PastaError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
