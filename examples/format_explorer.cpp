/// \file
/// Format explorer: compares COO / HiCOO / gHiCOO storage and kernel
/// behavior across sparsity regimes, reproducing the format-choice
/// guidance of the paper's §III (HiCOO wins on clustered tensors, loses
/// on hyper-sparse ones, and gHiCOO recovers the loss by leaving
/// scattered modes uncompressed).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "gen/kronecker.hpp"
#include "gen/powerlaw.hpp"
#include "kernels/mttkrp.hpp"

namespace {

using namespace pasta;

void
report(const std::string& label, const CooTensor& x)
{
    const HiCooTensor h = coo_to_hicoo(x);
    const GHiCooTensor g01 = coo_to_ghicoo(x, {true, true, false});
    std::printf("%-22s nnz %8zu | COO %8.1f KB | HiCOO %8.1f KB "
                "(n_b %7zu, %5.1f nnz/blk) | gHiCOO(ij) %8.1f KB\n",
                label.c_str(), x.nnz(), x.storage_bytes() / 1024.0,
                h.storage_bytes() / 1024.0, h.num_blocks(),
                h.mean_block_nnz(), g01.storage_bytes() / 1024.0);

    // Time MTTKRP in both formats with the paper's R = 16.
    Rng rng(1);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(x.dim(0), 16);
    const RunStats coo_time =
        timed_runs([&] { mttkrp_coo(x, factors, 0, out); }, 3, 1);
    const RunStats hicoo_time =
        timed_runs([&] { mttkrp_hicoo(h, factors, 0, out); }, 3, 1);
    std::printf("%-22s MTTKRP R=16: COO %8.3f ms | HiCOO %8.3f ms\n", "",
                coo_time.mean_seconds * 1e3,
                hicoo_time.mean_seconds * 1e3);
}

}  // namespace

int
main(int argc, char** argv)
{
    const Size nnz = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100'000;

    // Regime 1: block-clustered (Kronecker skew piles mass near origin).
    KroneckerConfig kron;
    kron.dims = {4096, 4096, 4096};
    kron.nnz = nnz;
    kron.seed = 1;
    report("kronecker-clustered", generate_kronecker(kron));

    // Regime 2: power-law with a short dense mode (irregular tensors).
    PowerLawConfig pl;
    pl.dims = {65536, 65536, 128};
    pl.nnz = nnz;
    pl.uniform_mode = {false, false, true};
    pl.seed = 2;
    report("powerlaw-irregular", generate_powerlaw(pl));

    // Regime 3: hyper-sparse uniform scatter (HiCOO's worst case).
    {
        Rng rng(3);
        CooTensor scatter({1u << 20, 1u << 20, 1u << 20});
        scatter.reserve(nnz / 4);
        Coordinate c(3);
        while (scatter.nnz() < nnz / 4) {
            for (Size m = 0; m < 3; ++m)
                c[m] = rng.next_index(1u << 20);
            scatter.append(c, 1.0f);
        }
        scatter.sort_lexicographic();
        scatter.coalesce();
        report("uniform-hypersparse", scatter);
    }

    std::printf("format_explorer done\n");
    return 0;
}
