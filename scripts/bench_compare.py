#!/usr/bin/env python3
"""Compare two bench_smoke.sh profiles and flag throughput regressions.

Usage: scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Both inputs are google-benchmark JSON files (BENCH_kernels.json as
written by scripts/bench_smoke.sh).  Benchmarks are matched by name;
for each pair the relative change in items_per_second is reported.  The
script exits non-zero when any benchmark's throughput dropped by more
than --threshold percent (default 10), making it usable as a CI gate:

    scripts/bench_smoke.sh build-release baseline.json
    ... apply change ...
    scripts/bench_smoke.sh build-release candidate.json
    scripts/bench_compare.py baseline.json candidate.json

Benchmarks present in only one file are listed but never fail the
check, and aggregate entries (mean/median/stddev rows emitted under
--benchmark_repetitions > 1) are skipped.
"""

import argparse
import json
import sys


def load_throughputs(path):
    """Map benchmark name -> items_per_second for one JSON profile."""
    with open(path) as f:
        doc = json.load(f)
    build_type = doc.get("context", {}).get("library_build_type", "")
    if build_type == "debug":
        print(f"warning: {path} used a debug google-benchmark library; "
              "timings may be noisy", file=sys.stderr)
    rates = {}
    for entry in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregates; compare raw iterations.
        if entry.get("run_type") == "aggregate":
            continue
        rate = entry.get("items_per_second")
        if rate:
            rates[entry["name"]] = float(rate)
    return rates


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench_smoke.sh JSON profiles")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated items_per_second drop, "
                             "percent (default 10)")
    args = parser.parse_args()

    base = load_throughputs(args.baseline)
    cand = load_throughputs(args.candidate)
    if not base:
        print(f"error: no items_per_second entries in {args.baseline}",
              file=sys.stderr)
        return 2

    regressions = []
    width = max((len(n) for n in base), default=0)
    for name in sorted(base):
        if name not in cand:
            print(f"{name:<{width}}  only in baseline")
            continue
        old, new = base[name], cand[name]
        change = (new - old) / old * 100.0
        marker = ""
        if change < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, change))
        print(f"{name:<{width}}  {old:14.3e} -> {new:14.3e}  "
              f"{change:+7.2f}%{marker}")
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}  only in candidate")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.1f}%:", file=sys.stderr)
        for name, change in regressions:
            print(f"  {name}: {change:+.2f}%", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}% "
          f"({len(base)} baseline benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
