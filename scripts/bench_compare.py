#!/usr/bin/env python3
"""Compare two bench profiles and flag throughput regressions.

Usage: scripts/bench_compare.py BASELINE CANDIDATE [--threshold PCT]

Inputs may be google-benchmark JSON files (BENCH_kernels.json as written
by scripts/bench_smoke.sh) or pasta suite CSVs (written by the figure
binaries under PASTA_CSV_DIR); the format is chosen by file extension.
Either side may also be a comma-separated list of files and/or shell
globs ('out/profile_*.csv' or 'a.csv,b.csv') — the matched files are
merged into one profile before comparing, which is how the per-shard
CSVs of a sharded pasta_campaign run compare against a single-process
baseline.  Benchmarks are matched by name (JSON) or by
tensor/kernel/format (CSV, plus the variant column when present — so a
run forced to PASTA_SIMD=scalar never gates against an avx2/avx512 run
as a "regression", it simply shows up as only-in-one-side — plus the
shard column when present, so the partition-range shards of one sweep
stay distinct); for each pair the relative change in throughput
(items_per_second or gflops) is reported.
Entries with missing or malformed names/rates are skipped rather than
crashing, so profiles from newer or older binaries with extra keys
still compare.

CSV inputs that carry the roofline_pct column (PASTA_TRACE counters
armed) are additionally gated on roofline efficiency: a trial whose
"% of roofline" dropped by more than --threshold percent (relative) is
a regression even if raw GFLOPS merely shifted with the machine.

CSV inputs that carry the mem_peak column (governor-metered peak bytes
per trial, PASTA_MEM_BYTES plumbing) are compared too, but warn-only:
a trial whose peak resident working set GREW by more than --threshold
percent prints a loud warning without failing the gate, since peak
memory legitimately moves with partition counts and thread counts.

Serving CSVs (bench_serving's serving.csv) carry jobs_per_sec instead
of gflops; that column is gated as the row's throughput.  Their p99_ms
column is compared warn-only, like mem_peak: tail latency that GREW by
more than --threshold percent prints a loud warning without failing
the gate (the p99 of an open-loop phase legitimately moves with the
arrival-rate draw and machine load).

Either side may also include a PASTA_METRICS heartbeat (*.jsonl, as
written by the live metrics exporter or the campaign aggregator): the
LAST parseable snapshot's histograms are decoded with the same
log-linear bucket math as obs/metrics.hpp and their p99s compared.
Unlike the CSV p99_ms column, histogram-derived p99s ARE a real gate
when both sides carry them — the histogram pools every recorded value
(not one open-loop draw), so a grown p99 there is signal, not noise.

The script exits non-zero when any benchmark regressed by more than
--threshold percent (default 10), making it usable as a CI gate:

    scripts/bench_smoke.sh build-release baseline.json
    ... apply change ...
    scripts/bench_smoke.sh build-release candidate.json
    scripts/bench_compare.py baseline.json candidate.json

Benchmarks present in only one file are listed but never fail the
check, and aggregate entries (mean/median/stddev rows emitted under
--benchmark_repetitions > 1) are skipped.
"""

import argparse
import csv
import glob
import json
import math
import sys


def parse_rate(value):
    """float(value) or None for missing/malformed rates."""
    if value is None:
        return None
    try:
        rate = float(value)
    except (TypeError, ValueError):
        return None
    return rate if rate > 0 else None


def load_json_throughputs(path):
    """Map benchmark name -> items_per_second for one JSON profile."""
    with open(path) as f:
        doc = json.load(f)
    build_type = doc.get("context", {}).get("library_build_type", "")
    if build_type == "debug":
        print(f"warning: {path} used a debug google-benchmark library; "
              "timings may be noisy", file=sys.stderr)
    rates = {}
    for entry in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregates; compare raw iterations.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        rate = parse_rate(entry.get("items_per_second"))
        if name and rate:
            rates[name] = rate
    return rates, {}, {}, {}, {}


# Log-linear histogram decoding, mirroring obs/metrics.hpp: 32
# sub-buckets per octave, values below 64 exact.
_SUB_BITS = 5


def _bucket_lower(idx):
    if idx < 64:
        return idx
    hi = idx >> 5
    return (idx - (hi - 1) * 32) << (hi + 4 - _SUB_BITS)


def _bucket_width(idx):
    return 1 if idx < 64 else 1 << ((idx >> 5) + 4 - _SUB_BITS)


def _hist_percentile(hist, q):
    """Same rank convention as HistSample::percentile."""
    count = hist.get("count", 0)
    if not count:
        return None
    rank = max(1, min(count, math.ceil(q * count)))
    cum = 0
    for idx, n in hist.get("buckets", []):
        cum += n
        if cum >= rank:
            width = _bucket_width(idx)
            lower = _bucket_lower(idx)
            return float(lower) if width == 1 else lower + width / 2.0
    return float(hist.get("max", 0))


def load_metrics_histograms(path):
    """Histogram p99s (in the histograms' own unit, typically µs) from
    the LAST parseable snapshot of a PASTA_METRICS heartbeat — same
    torn-tail tolerance as the C++ loader."""
    last = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(snap, dict) and "ts" in snap:
                last = snap
    hist_p99 = {}
    if last:
        for name, hist in last.get("hists", {}).items():
            p99 = _hist_percentile(hist, 0.99)
            if p99:
                hist_p99[name] = p99
    return {}, {}, {}, {}, hist_p99


def load_csv_throughputs(path):
    """Map tensor/kernel/format -> gflops or jobs_per_sec (plus
    roofline_pct, mem_peak, and p99_ms when the CSV carries those
    columns) for one suite CSV."""
    rates = {}
    roofline = {}
    mem_peak = {}
    p99 = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            key = "/".join(row.get(col) or "?"
                           for col in ("tensor", "kernel", "format"))
            if key == "?/?/?":
                continue
            # Key per variant (e.g. atomic_avx2 vs atomic_scalar): rows
            # produced under different kernel/SIMD dispatch decisions
            # are different benchmarks, not regressions of one another.
            if row.get("variant"):
                key += "#" + row["variant"]
            # Campaign shard CSVs carry a shard column; keep the
            # partition-range shards of one sweep distinct.
            if row.get("shard"):
                key += "@" + row["shard"]
            # Serving CSVs report jobs/s rather than gflops; either one
            # is the row's gated throughput.
            rate = parse_rate(row.get("gflops")) or parse_rate(
                row.get("jobs_per_sec"))
            if rate:
                rates[key] = rate
            pct = parse_rate(row.get("roofline_pct"))
            if pct:
                roofline[key] = pct
            peak = parse_rate(row.get("mem_peak"))
            if peak:
                mem_peak[key] = peak
            tail = parse_rate(row.get("p99_ms"))
            if tail:
                p99[key] = tail
    return rates, roofline, mem_peak, p99, {}


def expand_inputs(spec):
    """Expands a comma-separated list of paths/globs into file paths.
    A pattern with no match is kept verbatim so open() reports it."""
    paths = []
    for part in spec.split(","):
        if not part:
            continue
        matches = sorted(glob.glob(part))
        paths.extend(matches if matches else [part])
    return paths


def load_throughputs(spec):
    """Loads one profile side: every matched file parsed by extension
    and merged into one map (later files win on duplicate keys)."""
    rates, roofline, mem_peak, p99, hist_p99 = {}, {}, {}, {}, {}
    for path in expand_inputs(spec):
        if path.endswith(".csv"):
            loader = load_csv_throughputs
        elif path.endswith(".jsonl"):
            loader = load_metrics_histograms
        else:
            loader = load_json_throughputs
        r, roof, mem, tail, hist = loader(path)
        rates.update(r)
        roofline.update(roof)
        mem_peak.update(mem)
        p99.update(tail)
        hist_p99.update(hist)
    return rates, roofline, mem_peak, p99, hist_p99


def compare(base, cand, threshold, metric, regressions):
    """Print the diff of one metric map pair, appending regressions."""
    width = max((len(n) for n in base), default=0)
    for name in sorted(base):
        if name not in cand:
            print(f"{name:<{width}}  only in baseline")
            continue
        old, new = base[name], cand[name]
        change = (new - old) / old * 100.0
        marker = ""
        if change < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append((f"{name} [{metric}]", change))
        print(f"{name:<{width}}  {old:14.3e} -> {new:14.3e}  "
              f"{change:+7.2f}%{marker}")
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}  only in candidate")


def compare_grew_gated(base, cand, threshold, metric, regressions):
    """Gated diff for a lower-is-better metric: growth beyond the
    threshold IS a regression (used for histogram-derived p99s, which
    pool every recorded value and so are stable enough to gate on)."""
    width = max((len(n) for n in base), default=0)
    for name in sorted(base):
        if name not in cand:
            print(f"{name:<{width}}  only in baseline")
            continue
        old, new = base[name], cand[name]
        change = (new - old) / old * 100.0
        marker = ""
        if change > threshold:
            marker = "  <-- REGRESSION"
            regressions.append((f"{name} [{metric}]", change))
        print(f"{name:<{width}}  {old:14.3e} -> {new:14.3e}  "
              f"{change:+7.2f}%{marker}")
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}  only in candidate")


def compare_grew_warn_only(base, cand, threshold, title, what):
    """Warn-only diff for lower-is-better metrics (peak bytes, tail
    latency): growth beyond the threshold is loud but never fails the
    gate, since both legitimately move with partition/thread counts and
    machine load."""
    print(f"\n-- {title} (warn-only) --")
    width = max((len(n) for n in base), default=0)
    warnings = []
    for name in sorted(base):
        if name not in cand:
            continue
        old, new = base[name], cand[name]
        change = (new - old) / old * 100.0
        marker = ""
        if change > threshold:
            marker = "  <-- GREW"
            warnings.append((name, change))
        print(f"{name:<{width}}  {old:14.3e} -> {new:14.3e}  "
              f"{change:+7.2f}%{marker}")
    for name, change in warnings:
        print(f"warning: {name} {what} grew {change:+.2f}% "
              f"(> {threshold:.1f}%); not failing the gate",
              file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench profiles (JSON or suite CSV)")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated relative drop, percent "
                             "(default 10)")
    args = parser.parse_args()

    (base, base_roof, base_mem, base_p99,
     base_hist) = load_throughputs(args.baseline)
    (cand, cand_roof, cand_mem, cand_p99,
     cand_hist) = load_throughputs(args.candidate)
    if not base and not base_hist:
        print(f"error: no throughput or histogram entries in "
              f"{args.baseline}", file=sys.stderr)
        return 2

    regressions = []
    if base:
        compare(base, cand, args.threshold, "throughput", regressions)
    if base_roof and cand_roof:
        print("\n-- roofline efficiency (% of roofline) --")
        compare(base_roof, cand_roof, args.threshold, "roofline_pct",
                regressions)
    if base_mem and cand_mem:
        compare_grew_warn_only(base_mem, cand_mem, args.threshold,
                               "peak memory (governor-metered bytes)",
                               "peak memory")
    if base_p99 and cand_p99:
        compare_grew_warn_only(base_p99, cand_p99, args.threshold,
                               "p99 latency (ms)", "p99 latency")
    if base_hist and cand_hist:
        print("\n-- histogram-derived p99 (gated) --")
        compare_grew_gated(base_hist, cand_hist, args.threshold,
                           "hist_p99", regressions)

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.1f}%:", file=sys.stderr)
        for name, change in regressions:
            print(f"  {name}: {change:+.2f}%", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}% "
          f"({len(base)} baseline benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
