#!/usr/bin/env python3
"""Summarize a pasta trace: top phases by total time plus thread balance.

Usage: scripts/trace_summary.py TRACE [--top N]

TRACE is either a <stem>.trace.json (Chrome trace-event JSON as written
by the bench suites with PASTA_TRACE=spans/full) or a <stem>.spans.jsonl
(one span object per line); the format is chosen by file extension.

Two tables are printed:
  - the top-N phases by cumulative duration (count, total, mean, max),
    which answers "where does the suite spend its time";
  - per-thread busy time over top-level spans only (nested spans would
    double-count), with a max/mean imbalance figure mirroring the
    *.worker_items counters the kernels record.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_spans(path):
    """Yield (name, tid, depth, dur_us) from either trace format."""
    if path.endswith(".jsonl"):
        with open(path) as f:
            for line in f:
                if not line.strip():
                    continue
                span = json.loads(line)
                yield (span.get("name", "?"), span.get("tid", 0),
                       span.get("depth", 0), float(span.get("dur_us", 0)))
        return
    with open(path) as f:
        doc = json.load(f)
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue  # counter/metadata events carry no duration
        args = event.get("args", {})
        yield (event.get("name", "?"), event.get("tid", 0),
               args.get("depth", 0), float(event.get("dur", 0)))


def main():
    parser = argparse.ArgumentParser(
        description="Top-N phase and thread-imbalance report")
    parser.add_argument("trace", help="*.trace.json or *.spans.jsonl")
    parser.add_argument("--top", type=int, default=15,
                        help="phases to print (default 15)")
    args = parser.parse_args()

    phases = defaultdict(lambda: [0, 0.0, 0.0])  # count, total, max
    threads = defaultdict(float)                 # tid -> top-level busy us
    total_spans = 0
    for name, tid, depth, dur_us in load_spans(args.trace):
        total_spans += 1
        entry = phases[name]
        entry[0] += 1
        entry[1] += dur_us
        entry[2] = max(entry[2], dur_us)
        if depth == 0:
            threads[tid] += dur_us
    if not total_spans:
        print(f"error: no spans in {args.trace} "
              "(was PASTA_TRACE=spans or full set?)", file=sys.stderr)
        return 1

    width = max(len(n) for n in phases)
    print(f"{total_spans} spans, {len(phases)} distinct phases, "
          f"{len(threads)} recording thread(s)\n")
    print(f"-- top {min(args.top, len(phases))} phases by total time --")
    print(f"{'phase':<{width}} {'count':>8} {'total ms':>12} "
          f"{'mean us':>12} {'max us':>12}")
    ranked = sorted(phases.items(), key=lambda kv: -kv[1][1])
    for name, (count, total, peak) in ranked[:args.top]:
        print(f"{name:<{width}} {count:>8} {total / 1e3:>12.3f} "
              f"{total / count:>12.2f} {peak:>12.2f}")
    hidden = len(ranked) - args.top
    if hidden > 0:
        rest = sum(total for _, (_, total, _) in ranked[args.top:])
        print(f"(+{hidden} more phases, {rest / 1e3:.3f} ms)")

    print("\n-- per-thread busy time (top-level spans) --")
    busy = sorted(threads.items())
    for tid, us in busy:
        print(f"tid {tid:<4} {us / 1e3:>12.3f} ms")
    values = [us for _, us in busy if us > 0]
    if len(values) > 1:
        mean = sum(values) / len(values)
        print(f"imbalance (max/mean): {max(values) / mean:.2f}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
