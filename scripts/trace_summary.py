#!/usr/bin/env python3
"""Summarize a pasta trace: top phases by total time plus thread balance.

Usage: scripts/trace_summary.py TRACE [--top N]

TRACE is either a <stem>.trace.json (Chrome trace-event JSON as written
by the bench suites with PASTA_TRACE=spans/full) or a <stem>.spans.jsonl
(one span object per line); the format is chosen by file extension.
Merged multi-process campaign traces (campaign.trace.json) work too:
spans from different workers keep distinct "pid/tid" rows in the
thread-balance table, and the leading pastaMeta header lines of
spans.jsonl files are skipped.

Two tables are printed:
  - the top-N phases by cumulative duration (count, total, mean, max),
    which answers "where does the suite spend its time";
  - per-thread busy time over top-level spans only (nested spans would
    double-count), with a max/mean imbalance figure mirroring the
    *.worker_items counters the kernels record.

Per-job span instances ("serve.wait#<id>" / "serve.exec#<id>" as
recorded by the serving scheduler) are folded into their base phase for
the tables above — thousands of one-shot names would drown the report.
When such spans are present a third, serving-specific table is printed:
the paired queue-wait vs execute time per job, the aggregate wait share
(time jobs sat queued versus running — the scheduler-saturation
figure), and the top-N slowest jobs by end-to-end (wait + exec) time.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

# Per-instance span names: "<phase>#<job id>".
_INSTANCE = re.compile(r"^(.*)#(\d+)$")


def load_spans(path):
    """Yield (name, track, depth, dur_us) from either trace format.

    `track` is the recording thread id, prefixed with the process id for
    merged multi-process traces (campaign.trace.json) so two workers'
    thread 0 stay distinct rows in the balance table.
    """
    if path.endswith(".jsonl"):
        with open(path) as f:
            for line in f:
                if not line.strip():
                    continue
                span = json.loads(line)
                if "pastaMeta" in span:
                    continue  # writer-identity header, not a span
                yield (span.get("name", "?"), span.get("tid", 0),
                       span.get("depth", 0), float(span.get("dur_us", 0)))
        return
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    pids = {e.get("pid", 1) for e in events if e.get("ph") == "X"}
    multi = len(pids) > 1
    for event in events:
        if event.get("ph") != "X":
            continue  # counter/metadata events carry no duration
        args = event.get("args", {})
        tid = event.get("tid", 0)
        track = f"{event.get('pid', 1)}/{tid}" if multi else tid
        yield (event.get("name", "?"), track,
               args.get("depth", 0), float(event.get("dur", 0)))


def main():
    parser = argparse.ArgumentParser(
        description="Top-N phase and thread-imbalance report")
    parser.add_argument("trace", help="*.trace.json or *.spans.jsonl")
    parser.add_argument("--top", type=int, default=15,
                        help="phases to print (default 15)")
    args = parser.parse_args()

    phases = defaultdict(lambda: [0, 0.0, 0.0])  # count, total, max
    threads = defaultdict(float)                 # tid -> top-level busy us
    jobs = defaultdict(lambda: defaultdict(float))  # id -> stage -> us
    total_spans = 0
    for name, tid, depth, dur_us in load_spans(args.trace):
        total_spans += 1
        # Fold "serve.wait#123" into "serve.wait" for the phase table,
        # and keep the per-job pairing for the serving section.
        m = _INSTANCE.match(name)
        if m:
            name = m.group(1)
            stage = name.rsplit(".", 1)[-1]
            if name.startswith("serve.") and stage in ("wait", "exec"):
                jobs[int(m.group(2))][stage] += dur_us
        entry = phases[name]
        entry[0] += 1
        entry[1] += dur_us
        entry[2] = max(entry[2], dur_us)
        if depth == 0:
            threads[tid] += dur_us
    if not total_spans:
        print(f"error: no spans in {args.trace} "
              "(was PASTA_TRACE=spans or full set?)", file=sys.stderr)
        return 1

    width = max(len(n) for n in phases)
    print(f"{total_spans} spans, {len(phases)} distinct phases, "
          f"{len(threads)} recording thread(s)\n")
    print(f"-- top {min(args.top, len(phases))} phases by total time --")
    print(f"{'phase':<{width}} {'count':>8} {'total ms':>12} "
          f"{'mean us':>12} {'max us':>12}")
    ranked = sorted(phases.items(), key=lambda kv: -kv[1][1])
    for name, (count, total, peak) in ranked[:args.top]:
        print(f"{name:<{width}} {count:>8} {total / 1e3:>12.3f} "
              f"{total / count:>12.2f} {peak:>12.2f}")
    hidden = len(ranked) - args.top
    if hidden > 0:
        rest = sum(total for _, (_, total, _) in ranked[args.top:])
        print(f"(+{hidden} more phases, {rest / 1e3:.3f} ms)")

    print("\n-- per-thread busy time (top-level spans) --")
    busy = sorted(threads.items())
    for tid, us in busy:
        print(f"tid {tid:<4} {us / 1e3:>12.3f} ms")
    values = [us for _, us in busy if us > 0]
    if len(values) > 1:
        mean = sum(values) / len(values)
        print(f"imbalance (max/mean): {max(values) / mean:.2f}")

    if jobs:
        report_serve_jobs(jobs, args.top)
    return 0


def report_serve_jobs(jobs, top):
    """Queue-wait vs execute breakdown over paired serve.* job spans."""
    wait_total = sum(j["wait"] for j in jobs.values())
    exec_total = sum(j["exec"] for j in jobs.values())
    span_total = wait_total + exec_total
    print(f"\n-- serving: {len(jobs)} jobs "
          f"(queue-wait vs execute) --")
    print(f"total wait {wait_total / 1e3:>12.3f} ms  "
          f"({wait_total / span_total * 100.0 if span_total else 0:.1f}% "
          "of job time)")
    print(f"total exec {exec_total / 1e3:>12.3f} ms")
    ranked = sorted(jobs.items(),
                    key=lambda kv: -(kv[1]["wait"] + kv[1]["exec"]))
    n = min(top, len(ranked))
    print(f"\n-- top {n} slowest jobs by end-to-end time --")
    print(f"{'job':>8} {'wait us':>12} {'exec us':>12} "
          f"{'total us':>12} {'wait share':>11}")
    for job_id, stages in ranked[:n]:
        wait, execute = stages["wait"], stages["exec"]
        total = wait + execute
        share = wait / total * 100.0 if total else 0.0
        print(f"{job_id:>8} {wait:>12.2f} {execute:>12.2f} "
              f"{total:>12.2f} {share:>10.1f}%")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
