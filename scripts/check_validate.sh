#!/usr/bin/env bash
# Smoke-checks the validation layer end to end: runs one CPU bench figure
# with differential kernel checking armed (PASTA_VALIDATE=kernel) against
# a throwaway cache, then asserts that the run journal records zero
# trials in the "validation" failure class.  A kernel whose output drifts
# from the COO-serial oracle fails this script.
#
# Usage: scripts/check_validate.sh [build-dir]
#   build-dir  defaults to build
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="${BUILD_DIR}/bench/bench_fig4_cpu_bluesky"

if [[ ! -x "${BIN}" ]]; then
    cmake -B "${BUILD_DIR}" -S .
    cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_fig4_cpu_bluesky
fi

CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "${CACHE_DIR}"' EXIT

PASTA_VALIDATE=kernel \
PASTA_CACHE="${CACHE_DIR}" \
PASTA_SCALE=1e-4 \
PASTA_RUNS=1 \
    "${BIN}"

JOURNAL="${CACHE_DIR}/fig4_cpu_bluesky.cpu.journal.jsonl"
if [[ ! -f "${JOURNAL}" ]]; then
    echo "FAIL: expected journal ${JOURNAL} was not written" >&2
    exit 1
fi

TRIALS=$(wc -l < "${JOURNAL}")
VALIDATION_FAILURES=$(grep -c '"class":"validation"' "${JOURNAL}" || true)
if [[ "${VALIDATION_FAILURES}" -ne 0 ]]; then
    echo "FAIL: ${VALIDATION_FAILURES} of ${TRIALS} journaled trials" \
         "failed differential validation:" >&2
    grep '"class":"validation"' "${JOURNAL}" >&2
    exit 1
fi

echo "validate smoke run passed: ${TRIALS} trials, 0 validation failures"
