#!/usr/bin/env python3
"""Render the figure benches' CSV output as charts.

Usage:
    PASTA_CSV_DIR=results ./build/bench/bench_fig4_cpu_bluesky
    python3 scripts/plot_figures.py results/fig4_cpu_bluesky.csv

With matplotlib installed, writes a grouped-bar PNG per kernel next to the
CSV (log-scale GFLOPS with the roofline drawn, like the paper's Figs 4-7);
without it, prints ASCII bar charts so the series remain inspectable on
any machine.
"""
import csv
import sys
from collections import defaultdict

KERNELS = ["TEW", "TS", "TTV", "TTM", "MTTKRP"]


def load(path):
    """Returns {kernel: {format: [(tensor, gflops, roofline)]}}."""
    series = defaultdict(lambda: defaultdict(list))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            series[row["kernel"]][row["format"]].append(
                (row["tensor"], float(row["gflops"]),
                 float(row["roofline_gflops"])))
    return series


def ascii_chart(kernel, by_format, width=46):
    rows = by_format.get("COO", [])
    hicoo = {t: g for t, g, _ in by_format.get("HiCOO", [])}
    if not rows:
        return
    peak = max(
        max(g for _, g, _ in rows),
        max(hicoo.values(), default=0.0),
    )
    if peak <= 0:
        return
    print(f"\n-- {kernel} (GFLOPS, # = COO, + = HiCOO) --")
    for tensor, gflops, roof in rows:
        coo_bar = "#" * max(1, int(width * gflops / peak))
        h = hicoo.get(tensor, 0.0)
        hicoo_bar = "+" * max(1, int(width * h / peak))
        print(f"{tensor:>8} {gflops:9.3f} {coo_bar}")
        print(f"{'':>8} {h:9.3f} {hicoo_bar}")
    print(f"{'roofline':>8} {rows[0][2]:9.3f}")


def plot_png(path, series):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(len(KERNELS), 1,
                             figsize=(12, 3 * len(KERNELS)))
    for ax, kernel in zip(axes, KERNELS):
        by_format = series.get(kernel, {})
        coo = by_format.get("COO", [])
        hicoo = by_format.get("HiCOO", [])
        if not coo:
            continue
        tensors = [t for t, _, _ in coo]
        x = range(len(tensors))
        ax.bar([i - 0.2 for i in x], [g for _, g, _ in coo], 0.4,
               label="COO")
        ax.bar([i + 0.2 for i in x], [g for _, g, _ in hicoo], 0.4,
               label="HiCOO")
        ax.plot(list(x), [r for _, _, r in coo], "r-",
                label="Roofline")
        ax.set_yscale("log")
        ax.set_ylabel(f"{kernel} GFLOPS")
        ax.set_xticks(list(x))
        ax.set_xticklabels(tensors, rotation=60, fontsize=7)
        ax.legend(fontsize=7)
    out = path.rsplit(".", 1)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    print(f"wrote {out}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    for path in sys.argv[1:]:
        series = load(path)
        print(f"=== {path} ===")
        try:
            plot_png(path, series)
        except ImportError:
            for kernel in KERNELS:
                ascii_chart(kernel, series.get(kernel, {}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
