#!/usr/bin/env bash
# Smoke-checks the multi-tenant serving engine (src/serve) end to end:
#
#   1. chaos flood: bench_serving runs with PASTA_FAULT failing half of
#      all kernel.run entries; every accounting line must balance
#      (accepted == done + failed, lost == 0 — a crashed worker or a
#      dropped/duplicated job breaks that), failures must be non-zero
#      (the faults really fired), and the binary must still exit 0.
#   2. speedup gate: a clean run must show cache-on steady-state
#      throughput at least SERVE_MIN_SPEEDUP x the cache-off baseline
#      on the repeated-tensor corpus, with bit-identical results
#      (bench_serving exits non-zero on either violation).
#   3. open-loop latency: the poisson phase of the same run must report
#      non-zero p50/p95/p99 percentiles into the CSV.
#
# Usage: scripts/check_serve.sh [build-dir]
#   build-dir  defaults to build
#
# Environment:
#   SERVE_MIN_SPEEDUP  gated cache speedup (default 3)
#   SERVE_JOBS         jobs per phase (default 2000)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
MIN_SPEEDUP="${SERVE_MIN_SPEEDUP:-3}"
JOBS="${SERVE_JOBS:-2000}"
if [[ ! -x "${BUILD_DIR}/bench/bench_serving" ]]; then
    cmake -B "${BUILD_DIR}" -S .
    cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_serving
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# ---- 1. chaos flood: faults fail jobs, never workers ----
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_FAULT="kernel.run:throw:0.5" \
PASTA_LOG=error \
PASTA_SERVE_JOBS="${JOBS}" \
PASTA_SERVE_RATE=0 \
    "${BUILD_DIR}/bench/bench_serving" > "${WORK_DIR}/chaos.out" || {
    echo "FAIL: chaos run exited non-zero (lost jobs or dead workers)" >&2
    cat "${WORK_DIR}/chaos.out" >&2
    exit 1
}

python3 - "${WORK_DIR}/chaos.out" <<'EOF'
import re
import sys

out = open(sys.argv[1]).read()
lines = re.findall(
    r"accounting\[(\w+)\]: accepted=(\d+) done=(\d+) failed=(\d+) "
    r"shed=(\d+) refused=(\d+) lost=(\d+)", out)
if len(lines) < 2:
    sys.exit(f"FAIL: expected accounting lines for both phases:\n{out}")
total_failed = 0
for phase, accepted, done, failed, shed, refused, lost in lines:
    accepted, done, failed, lost = map(int, (accepted, done, failed, lost))
    if lost != 0:
        sys.exit(f"FAIL: phase {phase} lost {lost} job(s)")
    if accepted != done + failed:
        sys.exit(f"FAIL: phase {phase} accounting does not balance: "
                 f"accepted={accepted} done={done} failed={failed}")
    total_failed += failed
if total_failed == 0:
    sys.exit("FAIL: chaos spec armed but no job failed — faults not firing")
print(f"ok: chaos accounting balanced across {len(lines)} phases, "
      f"{total_failed} injected failures, zero lost")
EOF

# ---- 2 + 3. clean run: speedup gate, bit identity, latency CSV ----
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_CSV_DIR="${WORK_DIR}/csv" \
PASTA_LOG=error \
PASTA_SERVE_JOBS="${JOBS}" \
PASTA_SERVE_MIN_SPEEDUP="${MIN_SPEEDUP}" \
    "${BUILD_DIR}/bench/bench_serving" > "${WORK_DIR}/clean.out" || {
    echo "FAIL: clean run failed the speedup/bit-identity gate" >&2
    cat "${WORK_DIR}/clean.out" >&2
    exit 1
}
grep -q ', 0 mismatched' "${WORK_DIR}/clean.out" || {
    echo "FAIL: cached results were not bit-identical" >&2
    cat "${WORK_DIR}/clean.out" >&2
    exit 1
}

python3 - "${WORK_DIR}/csv/serving.csv" <<'EOF'
import csv
import sys

rows = list(csv.DictReader(open(sys.argv[1])))
variants = {r["variant"] for r in rows}
if not {"nocache", "cache", "poisson"} <= variants:
    sys.exit(f"FAIL: CSV missing phases, have {variants}")
per_kf = [r for r in rows if r["variant"] == "cache" and r["kernel"] != "*"]
if len(per_kf) < 3:
    sys.exit("FAIL: CSV lacks per-(kernel, format) cache rows")
for r in rows:
    if r["variant"] == "poisson" and r["kernel"] == "*":
        for col in ("p50_ms", "p95_ms", "p99_ms", "jobs_per_sec"):
            if float(r[col]) <= 0:
                sys.exit(f"FAIL: poisson {col} is {r[col]}")
cache_total = next(r for r in rows
                   if r["variant"] == "cache" and r["kernel"] == "*")
if float(cache_total["cache_hit_rate"]) <= 0.5:
    sys.exit(f"FAIL: cache hit rate {cache_total['cache_hit_rate']} "
             "too low for a repeated-tensor corpus")
print(f"ok: CSV carries {len(rows)} rows, poisson latency percentiles "
      f"present, hit rate {float(cache_total['cache_hit_rate']):.2f}")
EOF

grep 'speedup' "${WORK_DIR}/clean.out"
echo "serving smoke run passed (min speedup ${MIN_SPEEDUP}x, ${JOBS} jobs)"
