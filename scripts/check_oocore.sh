#!/usr/bin/env bash
# Smoke-checks the bounded-memory (out-of-core) stack end to end:
# bench_oocore runs against a throwaway cache with PASTA_MEM_BYTES set
# well below the synthesized tensor's COO footprint, and the script
# asserts everything ISSUE 6 promised:
#   - the budgeted entry points degrade to their streaming variants
#     (the report table carries a "mttkrp_stream_p<N>" label)
#   - the JSONL journal carries partitions_done / partitions_total and
#     a per-trial mem_peak that stays within the armed budget
#   - a rerun against the same journal resumes every finished trial
#     ("journaled" status rows instead of re-running the sweeps)
#
# The tensor file is pre-generated in an unmetered pass (synthesis and
# PSTB writing legitimately need the full footprint resident); only the
# kernel trials run under the budget.
#
# Usage: scripts/check_oocore.sh [build-dir]
#   build-dir  defaults to build
#
# Environment:
#   PASTA_OOCORE_BUDGET  byte budget to arm (default 100000, below the
#                        ~176 KB footprint of s1 at the default scale)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BUDGET="${PASTA_OOCORE_BUDGET:-100000}"
if [[ ! -x "${BUILD_DIR}/bench/bench_oocore" ]]; then
    cmake -B "${BUILD_DIR}" -S .
    cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_oocore
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# Pass 1 (unmetered): synthesize + write the PSTB v3 file only; discard
# the journal so the metered pass starts with no completed trials.
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_SCALE=1e-2 \
PASTA_JOURNAL=0 \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/bench_oocore" > /dev/null
rm -f "${WORK_DIR}"/cache/*.journal.jsonl

# Pass 2 (metered): every trial must degrade to its partition sweep.
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_SCALE=1e-2 \
PASTA_MEM_BYTES="${BUDGET}" \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/bench_oocore" | tee "${WORK_DIR}/metered.out"

grep -q 'mttkrp_stream_p' "${WORK_DIR}/metered.out" || {
    echo "FAIL: metered run did not route MTTKRP to a streaming variant" >&2
    exit 1
}

python3 - "${WORK_DIR}" "${BUDGET}" <<'EOF'
import glob
import json
import sys

work, budget = sys.argv[1], float(sys.argv[2])
journals = glob.glob(work + "/cache/*.journal.jsonl")
if not journals:
    sys.exit("FAIL: metered run wrote no journal")
entries = []
for path in journals:
    with open(path) as f:
        entries += [json.loads(line) for line in f if line.strip()]
ok = [e for e in entries if e.get("ok")]
if {e["kernel"] for e in ok} < {"MTTKRP", "TTV", "COALESCE"}:
    sys.exit(f"FAIL: journal missing successful trials: {ok}")
for e in ok:
    for field in ("partitions_done", "partitions_total", "mem_peak"):
        if field not in e:
            sys.exit(f"FAIL: journal entry missing {field}: {e}")
    if e["partitions_total"] < 2:
        sys.exit(f"FAIL: {e['kernel']} did not partition its sweep: {e}")
    if e["partitions_done"] != e["partitions_total"]:
        sys.exit(f"FAIL: {e['kernel']} finished with an incomplete sweep: {e}")
    if not 0 < e["mem_peak"] <= budget:
        sys.exit(f"FAIL: {e['kernel']} peak {e['mem_peak']} outside "
                 f"(0, {budget}]: {e}")
    if "stream" not in e.get("variant", ""):
        sys.exit(f"FAIL: {e['kernel']} did not stream: {e}")
print(f"ok: journal carries {len(ok)} streamed trials, "
      f"peaks within {int(budget)} bytes")
EOF

# Pass 3 (resume): the journal already has every trial; nothing reruns.
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_SCALE=1e-2 \
PASTA_MEM_BYTES="${BUDGET}" \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/bench_oocore" > "${WORK_DIR}/resume.out"

if [[ "$(grep -c 'journaled' "${WORK_DIR}/resume.out")" -lt 3 ]]; then
    echo "FAIL: rerun did not resume all three trials from the journal" >&2
    cat "${WORK_DIR}/resume.out" >&2
    exit 1
fi

echo "oocore smoke run passed (budget ${BUDGET} bytes)"
