#!/usr/bin/env bash
# Builds the suite in Release mode and runs the bench_kernels_micro sweep
# on the small synthetic power-law workload, emitting a JSON profile
# (google-benchmark format, one entry per kernel/format point with
# items_per_second and a "flops" rate counter -- divide by 1e9 for
# GFLOPs).  Use it to smoke-check that a change did not regress kernel
# throughput: compare BENCH_kernels.json against a baseline run.
#
# Usage: scripts/bench_smoke.sh [build-dir] [output-json]
#   build-dir    defaults to build-release
#   output-json  defaults to BENCH_kernels.json (in the repo root)
#
# Environment:
#   OMP_NUM_THREADS  worker count for the parallel kernels (default 4)
#   BENCH_FILTER     regex passed to --benchmark_filter (default: all)
#   BENCH_STRICT     when 1, fail (exit 1) if the google-benchmark
#                    library itself was built in debug mode; otherwise a
#                    loud warning is printed (debug-library timings are
#                    not comparable across runs)
#   BENCH_OBS        when not 0, also run scripts/check_obs.sh against
#                    the same build dir (PASTA_TRACE=full smoke of the
#                    instrumentation layer); set BENCH_OBS=0 to skip
#   BENCH_SIMD       when not 0, also run scripts/check_simd.sh against
#                    the same build dir (kernel tests + PASTA_VALIDATE
#                    oracles under every forced PASTA_SIMD dispatch
#                    target the CPU supports); set BENCH_SIMD=0 to skip
#   BENCH_OOCORE     when not 0, also run scripts/check_oocore.sh
#                    against the same build dir (bounded-memory smoke:
#                    PASTA_MEM_BYTES forces the streaming kernels and
#                    the journal resume path); set BENCH_OOCORE=0 to
#                    skip
#   BENCH_SERVE      when 1, also run scripts/check_serve.sh against
#                    the same build dir (multi-tenant serving smoke:
#                    chaos-flood accounting, cache speedup gate,
#                    open-loop latency percentiles); off by default —
#                    it runs several thousand jobs per phase
#   BENCH_CAMPAIGN   when 1, also run scripts/check_campaign.sh against
#                    the same build dir (crash-isolated multi-process
#                    campaign: PASTA_CHAOS SIGKILLs workers mid-trial
#                    and the merged journal must match an unkilled
#                    baseline); off by default — it forks worker pools
#                    and takes several seconds
#   BENCH_METRICS    when 1, also run scripts/check_metrics.sh against
#                    the same build dir (live telemetry smoke: a chaos
#                    campaign with PASTA_METRICS armed must keep
#                    per-shard heartbeats gap-free across the kill,
#                    aggregate counters equal to the merged journal,
#                    and merge per-worker traces into one valid
#                    campaign.trace.json); off by default
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-release}"
OUT_JSON="${2:-BENCH_kernels.json}"
export OMP_NUM_THREADS="${OMP_NUM_THREADS:-4}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_kernels_micro

"${BUILD_DIR}/bench/bench_kernels_micro" \
    --benchmark_filter="${BENCH_FILTER:-.*}" \
    --benchmark_out="${OUT_JSON}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

# A debug google-benchmark library skews every timing; refuse to treat
# such a profile as a baseline silently.
if grep -q '"library_build_type": "debug"' "${OUT_JSON}"; then
    echo "=======================================================" >&2
    echo "WARNING: ${OUT_JSON} was produced with a DEBUG build of" >&2
    echo "the google-benchmark library (library_build_type=debug)." >&2
    echo "Timings are not comparable with release-library runs."    >&2
    echo "Set BENCH_STRICT=1 to make this an error."                >&2
    echo "=======================================================" >&2
    if [ "${BENCH_STRICT:-0}" = "1" ]; then
        echo "BENCH_STRICT=1: failing on debug benchmark library" >&2
        exit 1
    fi
fi

echo "wrote ${OUT_JSON} (OMP_NUM_THREADS=${OMP_NUM_THREADS})"

# Instrumentation smoke: the same build must produce a valid trace.json,
# spans.jsonl, and obs CSV/journal columns with PASTA_TRACE=full.
if [ "${BENCH_OBS:-1}" != "0" ]; then
    scripts/check_obs.sh "${BUILD_DIR}"
fi

# Cross-ISA smoke: the kernel tests and validation oracles must pass
# under every forced SIMD dispatch target this CPU supports.
if [ "${BENCH_SIMD:-1}" != "0" ]; then
    scripts/check_simd.sh "${BUILD_DIR}"
fi

# Bounded-memory smoke: the same build must degrade to the streaming
# kernels under PASTA_MEM_BYTES and resume trials from the journal.
if [ "${BENCH_OOCORE:-1}" != "0" ]; then
    scripts/check_oocore.sh "${BUILD_DIR}"
fi

# Serving smoke: chaos-flood job accounting must balance, the plan
# cache must hit its speedup gate with bit-identical results, and the
# open-loop phase must report latency percentiles.
if [ "${BENCH_SERVE:-0}" = "1" ]; then
    scripts/check_serve.sh "${BUILD_DIR}"
fi

# Crash-isolation smoke: a chaos campaign (workers SIGKILL'd mid-trial)
# must produce the same merged journal as an unkilled baseline.
if [ "${BENCH_CAMPAIGN:-0}" = "1" ]; then
    scripts/check_campaign.sh "${BUILD_DIR}"
fi

# Telemetry smoke: heartbeats must survive a chaos kill, the campaign
# aggregate must equal the merged journal, and the per-worker traces
# must merge into one clock-aligned timeline.
if [ "${BENCH_METRICS:-0}" = "1" ]; then
    scripts/check_metrics.sh "${BUILD_DIR}"
fi
