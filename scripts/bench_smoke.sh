#!/usr/bin/env bash
# Builds the suite in Release mode and runs the bench_kernels_micro sweep
# on the small synthetic power-law workload, emitting a JSON profile
# (google-benchmark format, one entry per kernel/format point with
# items_per_second and a "flops" rate counter -- divide by 1e9 for
# GFLOPs).  Use it to smoke-check that a change did not regress kernel
# throughput: compare BENCH_kernels.json against a baseline run.
#
# Usage: scripts/bench_smoke.sh [build-dir] [output-json]
#   build-dir    defaults to build-release
#   output-json  defaults to BENCH_kernels.json (in the repo root)
#
# Environment:
#   OMP_NUM_THREADS  worker count for the parallel kernels (default 4)
#   BENCH_FILTER     regex passed to --benchmark_filter (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-release}"
OUT_JSON="${2:-BENCH_kernels.json}"
export OMP_NUM_THREADS="${OMP_NUM_THREADS:-4}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_kernels_micro

"${BUILD_DIR}/bench/bench_kernels_micro" \
    --benchmark_filter="${BENCH_FILTER:-.*}" \
    --benchmark_out="${OUT_JSON}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

echo "wrote ${OUT_JSON} (OMP_NUM_THREADS=${OMP_NUM_THREADS})"
