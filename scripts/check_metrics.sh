#!/usr/bin/env bash
# Smoke-checks the live telemetry pipeline end to end: runs a chaos
# campaign (PASTA_CHAOS SIGKILLs a worker mid-trial) with the metrics
# heartbeat and span tracing armed, then asserts everything ISSUE 10
# promised:
#   - every shard wrote a per-shard heartbeat (metrics.<shard>.jsonl)
#     and no heartbeat file has an inter-snapshot gap beyond
#     GAP_FACTOR x the exporter interval — the killed worker's shard
#     must resume heartbeating after the respawn/reclaim ladder
#   - the supervisor's aggregated snapshot (metrics.campaign.jsonl,
#     counters summed / gauges maxed / histograms merged across the
#     last snapshot of every shard heartbeat) agrees with the
#     exactly-once merged journal: campaign.trial.ok == ok entries,
#     campaign.trial.failed == failed entries
#   - the merged campaign.trace.json parses as JSON and carries spans
#     from every shard on distinct per-process pid tracks
#
# Usage: scripts/check_metrics.sh [build-dir]
#   build-dir  defaults to build
#
# Environment:
#   METRICS_INTERVAL_MS  exporter heartbeat period (default 1000)
#   GAP_FACTOR           tolerated gap as a multiple of the interval
#                        (default 3)
#   CHAOS_KILLS          SIGKILLs the campaign must deal (default 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
INTERVAL_MS="${METRICS_INTERVAL_MS:-1000}"
GAP_FACTOR="${GAP_FACTOR:-3}"
KILLS="${CHAOS_KILLS:-1}"
if [[ ! -x "${BUILD_DIR}/bench/pasta_campaign" ]]; then
    cmake -B "${BUILD_DIR}" -S .
    cmake --build "${BUILD_DIR}" -j "$(nproc)" --target pasta_campaign
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# Warm pass (unmetered, no telemetry): synthesize + persist the tensor.
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_CAMPAIGN_DIR="${WORK_DIR}/warm" \
PASTA_SCALE=1e-2 \
PASTA_SHARDS=2 \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/pasta_campaign" > /dev/null

# Chaos campaign with the full telemetry pipeline armed.  The
# PASTA_METRICS path deliberately lives OUTSIDE the campaign dir: it
# catches the pre-claim exporter of each process, while the per-shard
# files the workers re-arm inside the campaign dir are what the
# supervisor aggregates — the env file must not be swept into that.
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_CAMPAIGN_DIR="${WORK_DIR}/run" \
PASTA_SCALE=1e-2 \
PASTA_SHARDS=2 \
PASTA_CHAOS="${KILLS}" \
PASTA_FAULT_SEED=42 \
PASTA_CAMPAIGN_DELAY_MS=250 \
PASTA_METRICS="${WORK_DIR}/env.jsonl,${INTERVAL_MS}" \
PASTA_TRACE=spans \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/pasta_campaign" | tee "${WORK_DIR}/run.out"

SENT="$(grep -o '[0-9]* chaos kill(s) sent' "${WORK_DIR}/run.out" |
        grep -o '^[0-9]*' || echo 0)"
if [[ "${SENT}" -lt "${KILLS}" ]]; then
    echo "FAIL: campaign sent ${SENT} chaos kill(s), wanted ${KILLS}" >&2
    exit 1
fi

python3 - "${WORK_DIR}/run" "${INTERVAL_MS}" "${GAP_FACTOR}" <<'EOF'
import glob
import json
import os
import sys

run, interval_ms, gap_factor = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
gap_budget_s = gap_factor * interval_ms / 1000.0


def snapshots(path):
    snaps = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail is legal
            if isinstance(snap, dict) and "ts" in snap:
                snaps.append(snap)
    return snaps


# -- heartbeat continuity ------------------------------------------------
agg_path = f"{run}/metrics.campaign.jsonl"
shard_files = sorted(p for p in glob.glob(f"{run}/metrics.*.jsonl")
                     if p != agg_path
                     and not p.endswith("metrics.supervisor.jsonl"))
if not shard_files:
    sys.exit(f"FAIL: no per-shard heartbeat files under {run}")
for path in shard_files:
    snaps = snapshots(path)
    if not snaps:
        sys.exit(f"FAIL: {path} has no parseable snapshots")
    ts = [s["ts"] for s in snaps]
    for prev, cur in zip(ts, ts[1:]):
        if cur - prev > gap_budget_s:
            sys.exit(f"FAIL: {os.path.basename(path)} heartbeat gap "
                     f"{cur - prev:.2f}s exceeds {gap_budget_s:.2f}s "
                     "(did the killed shard stop heartbeating?)")

# -- aggregate vs merged journal ----------------------------------------
agg = snapshots(agg_path)
if not agg:
    sys.exit(f"FAIL: no aggregated snapshots in {agg_path}")
final = agg[-1]
ok = final.get("counters", {}).get("campaign.trial.ok", 0)
failed = final.get("counters", {}).get("campaign.trial.failed", 0)

journal_ok = journal_failed = 0
with open(f"{run}/journal.merged.jsonl") as f:
    for line in f:
        if not line.strip():
            continue
        e = json.loads(line)
        if e.get("ok"):
            journal_ok += 1
        else:
            journal_failed += 1
if (ok, failed) != (journal_ok, journal_failed):
    sys.exit(f"FAIL: aggregated counters (ok={ok}, failed={failed}) != "
             f"merged journal (ok={journal_ok}, failed={journal_failed})")

# -- merged trace --------------------------------------------------------
with open(f"{run}/campaign.trace.json") as f:
    trace = json.load(f)  # must be valid JSON despite the kill
events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
if not events:
    sys.exit("FAIL: merged campaign.trace.json has no spans")
pids = {e.get("pid") for e in events}
if len(pids) < 2:
    sys.exit(f"FAIL: merged trace has {len(pids)} pid track(s), "
             "wanted one per process")
names = {e.get("name", "") for e in events}
shards = {os.path.basename(p)[len("metrics."):-len(".jsonl")]
          for p in shard_files}
missing = {s for s in shards if f"campaign.shard.{s}" not in names}
if missing:
    sys.exit(f"FAIL: merged trace is missing shard spans: {sorted(missing)}")

print(f"ok: {len(shard_files)} shard heartbeat(s) gap-free, aggregate "
      f"(ok={ok}, failed={failed}) == journal, merged trace spans "
      f"{len(shards)} shard(s) across {len(pids)} process(es)")
EOF

echo "metrics telemetry smoke passed (${SENT} chaos kill(s) survived)"
