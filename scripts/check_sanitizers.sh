#!/usr/bin/env bash
# Builds the suite with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the tier-1 tests under it.  The robustness harness detaches worker
# threads on watchdog timeout by design, so LSAN's exit-time leak check is
# told to ignore still-running detached workers' allocations.
#
# Usage: scripts/check_sanitizers.sh [build-dir] [sanitizers]
#   build-dir   defaults to build-asan
#   sanitizers  defaults to address,undefined (passed to -fsanitize=)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
SANITIZERS="${2:-address,undefined}"

cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPASTA_SANITIZE="${SANITIZERS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error: make UBSan failures fatal so ctest reports them.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"

ctest --test-dir "${BUILD_DIR}" --output-on-failure

# Second pass with every validation layer armed: structural checks after
# each conversion, differential kernel checks, and bounds-checked
# simulated GPU accesses all run under the sanitizers too.
PASTA_VALIDATE=full ctest --test-dir "${BUILD_DIR}" --output-on-failure

echo "sanitizer run (${SANITIZERS}, plus PASTA_VALIDATE=full pass) passed"
