#!/usr/bin/env python3
"""Render a pasta metrics heartbeat (PASTA_METRICS JSONL) for humans.

Usage: scripts/metrics_summary.py METRICS.jsonl [--tail N] [--top N]

METRICS.jsonl is any heartbeat written by the live metrics exporter: a
bench run's PASTA_METRICS file, a campaign's per-shard
metrics.<shard>.jsonl, or the supervisor's aggregated
metrics.campaign.jsonl.  Each line is one snapshot
({"ts":..,"seq":..,"source":..,"counters":{},"gauges":{},"hists":{}});
torn final lines from a killed writer are skipped, matching the C++
loader's behavior.

Printed sections:
  - heartbeat tail: the last N snapshots with their inter-arrival gaps
    and the per-interval rate of the busiest counters — "is the run
    alive and how fast is it moving";
  - the newest snapshot's counters and gauges;
  - histogram percentiles (p50/p90/p95/p99/max) decoded from the
    log-linear buckets, matching obs/metrics.hpp's bucket math
    (32 sub-buckets per octave, values < 64 exact).
"""

import argparse
import json
import math
import sys

SUB_BITS = 5
HIST_BUCKETS = 1920


def bucket_lower(idx):
    """Inclusive lower edge of bucket idx (mirrors obs/metrics.hpp)."""
    if idx < 64:
        return idx
    hi = idx >> 5
    b = hi + 4
    m = idx - (hi - 1) * 32
    return m << (b - SUB_BITS)


def bucket_width(idx):
    if idx < 64:
        return 1
    return 1 << ((idx >> 5) + 4 - SUB_BITS)


def hist_percentile(hist, q):
    """Same rank convention as HistSample::percentile."""
    count = hist.get("count", 0)
    if not count:
        return 0.0
    rank = max(1, min(count, math.ceil(q * count)))
    cum = 0
    for idx, n in hist.get("buckets", []):
        cum += n
        if cum >= rank:
            w = bucket_width(idx)
            lo = bucket_lower(idx)
            return float(lo) if w == 1 else lo + w / 2.0
    return float(hist.get("max", 0))


def load_snapshots(path):
    """All parseable snapshots, in file order (torn lines skipped)."""
    snaps = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(snap, dict) and "ts" in snap:
                snaps.append(snap)
    return snaps


def fmt_value(v):
    if isinstance(v, float) and not v.is_integer():
        return f"{v:,.3f}"
    return f"{int(v):,}"


def report_tail(snaps, tail):
    last = snaps[-tail:]
    print(f"-- heartbeat tail (last {len(last)} of {len(snaps)} "
          "snapshots) --")
    # Busiest counters by delta across the tail window.
    first_c = last[0].get("counters", {})
    last_c = last[-1].get("counters", {})
    deltas = {k: last_c.get(k, 0) - first_c.get(k, 0) for k in last_c}
    busiest = [k for k, _ in sorted(deltas.items(),
                                    key=lambda kv: -abs(kv[1]))[:3]]
    header = f"{'seq':>6} {'ts':>14} {'gap s':>8}"
    for name in busiest:
        header += f" {name[:18]:>18}"
    print(header)
    prev_ts = None
    for snap in last:
        ts = snap.get("ts", 0.0)
        gap = f"{ts - prev_ts:8.2f}" if prev_ts is not None else "       -"
        row = f"{snap.get('seq', 0):>6} {ts:>14.2f} {gap}"
        for name in busiest:
            row += f" {snap.get('counters', {}).get(name, 0):>18,}"
        print(row)
        prev_ts = ts


def report_latest(snap, top):
    source = snap.get("source", "?")
    print(f"\n-- newest snapshot (source={source!r}, "
          f"seq={snap.get('seq', 0)}) --")
    counters = snap.get("counters", {})
    if counters:
        print("counters:")
        ranked = sorted(counters.items(), key=lambda kv: -kv[1])
        width = max(len(k) for k, _ in ranked)
        for name, v in ranked[:top]:
            print(f"  {name:<{width}} {fmt_value(v):>16}")
        if len(ranked) > top:
            print(f"  (+{len(ranked) - top} more)")
    gauges = snap.get("gauges", {})
    if gauges:
        print("gauges:")
        width = max(len(k) for k in gauges)
        for name in sorted(gauges):
            print(f"  {name:<{width}} {fmt_value(gauges[name]):>16}")
    hists = snap.get("hists", {})
    live = {k: h for k, h in hists.items() if h.get("count")}
    if live:
        print("histograms:")
        width = max(len(k) for k in live)
        print(f"  {'name':<{width}} {'count':>10} {'mean':>12} "
              f"{'p50':>12} {'p90':>12} {'p95':>12} {'p99':>12} "
              f"{'max':>12}")
        for name in sorted(live):
            h = live[name]
            count = h["count"]
            mean = h.get("sum", 0) / count
            cols = " ".join(f"{hist_percentile(h, q):>12,.1f}"
                            for q in (0.50, 0.90, 0.95, 0.99))
            print(f"  {name:<{width}} {count:>10,} {mean:>12,.1f} "
                  f"{cols} {h.get('max', 0):>12,}")


def main():
    parser = argparse.ArgumentParser(
        description="Heartbeat tail + latest-snapshot metrics report")
    parser.add_argument("metrics", help="PASTA_METRICS JSONL file")
    parser.add_argument("--tail", type=int, default=10,
                        help="heartbeat lines to show (default 10)")
    parser.add_argument("--top", type=int, default=20,
                        help="counters to show (default 20)")
    args = parser.parse_args()

    snaps = load_snapshots(args.metrics)
    if not snaps:
        print(f"error: no parseable snapshots in {args.metrics} "
              "(was PASTA_METRICS armed?)", file=sys.stderr)
        return 1
    report_tail(snaps, max(1, args.tail))
    report_latest(snaps[-1], max(1, args.top))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
