#!/usr/bin/env bash
# Runs the SIMD-sensitive kernel test binaries under every forced
# dispatch target (PASTA_SIMD=scalar|avx2|avx512), skipping ISAs the
# host CPU does not report in /proc/cpuinfo.  The vector paths promise
# bit-identical elementwise results and oracle-clean kernels under any
# forced ISA; this script is the cheap cross-ISA sweep that catches a
# path that only works under the auto-dispatch default.
#
# Each forced run also re-executes the kernel oracles with
# PASTA_VALIDATE=kernel so the differential validation layer (vs the
# deliberately scalar mttkrp_coo_seq reference) gates every SIMD
# variant, not just the one auto-dispatch picked.
#
# Usage: scripts/check_simd.sh [build-dir]
#   build-dir  defaults to build
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TESTS=(test_simd test_mttkrp test_ttv test_ttm test_tew_ts test_methods
       test_semisparse_kernels test_csf)

for t in "${TESTS[@]}"; do
    if [[ ! -x "${BUILD_DIR}/tests/${t}" ]]; then
        cmake -B "${BUILD_DIR}" -S .
        cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${t}"
    fi
done

isas=(scalar)
if grep -qw avx2 /proc/cpuinfo; then
    isas+=(avx2)
else
    echo "skip: avx2 not reported by /proc/cpuinfo"
fi
if grep -qw avx512f /proc/cpuinfo; then
    isas+=(avx512)
else
    echo "skip: avx512 not reported by /proc/cpuinfo"
fi

for isa in "${isas[@]}"; do
    for t in "${TESTS[@]}"; do
        echo "== PASTA_SIMD=${isa} ${t} =="
        PASTA_SIMD="${isa}" PASTA_VALIDATE=kernel PASTA_LOG=warn \
            "${BUILD_DIR}/tests/${t}" --gtest_brief=1
    done
done

echo "simd dispatch sweep passed (${isas[*]})"
