#!/usr/bin/env bash
# Smoke-checks the instrumentation layer end to end: runs one small CPU
# figure and one simulated-GPU figure with PASTA_TRACE=full against a
# throwaway cache, then validates everything the obs subsystem promised
# to emit:
#   - <stem>.trace.json is valid JSON in Chrome trace-event form
#     (traceEvents array of "ph":"X" complete events)
#   - <stem>.spans.jsonl parses line by line
#   - the suite CSV carries the obs columns (variant, obs_flops,
#     obs_bytes, obs_ai, roofline_pct) with nonzero counter totals
#   - the run journal carries obs_flops/obs_bytes per trial
#
# Pass a sanitizer build dir (see scripts/check_sanitizers.sh) to run
# the same checks under ASan/UBSan; the script only needs the bench
# binaries to exist in ${BUILD_DIR}.
#
# Usage: scripts/check_obs.sh [build-dir]
#   build-dir  defaults to build
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
for target in bench_fig4_cpu_bluesky bench_fig6_gpu_p100; do
    if [[ ! -x "${BUILD_DIR}/bench/${target}" ]]; then
        cmake -B "${BUILD_DIR}" -S .
        cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${target}"
    fi
done

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

PASTA_TRACE=full \
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_CSV_DIR="${WORK_DIR}" \
PASTA_TRACE_DIR="${WORK_DIR}" \
PASTA_SCALE=2e-5 \
PASTA_RUNS=1 \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/bench_fig4_cpu_bluesky" > /dev/null

PASTA_TRACE=full \
PASTA_CACHE="${WORK_DIR}/cache" \
PASTA_CSV_DIR="${WORK_DIR}" \
PASTA_TRACE_DIR="${WORK_DIR}" \
PASTA_SCALE=2e-5 \
PASTA_RUNS=1 \
PASTA_LOG=warn \
    "${BUILD_DIR}/bench/bench_fig6_gpu_p100" > /dev/null

python3 - "${WORK_DIR}" <<'EOF'
import csv
import glob
import json
import os
import sys

work = sys.argv[1]
failures = []

traces = glob.glob(os.path.join(work, "*.trace.json"))
if not traces:
    failures.append("no .trace.json written")
for path in traces:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append(f"{path}: empty or missing traceEvents")
        continue
    for ev in events:
        if ev.get("ph") not in ("X", "C"):
            failures.append(f"{path}: unexpected phase {ev.get('ph')}")
            break
        if ev["ph"] == "X" and ("name" not in ev or "ts" not in ev
                                or "dur" not in ev):
            failures.append(f"{path}: X event missing name/ts/dur")
            break
    print(f"ok: {os.path.basename(path)} ({len(events)} events)")

jsonls = glob.glob(os.path.join(work, "*.spans.jsonl"))
if not jsonls:
    failures.append("no .spans.jsonl written")
for path in jsonls:
    n = 0
    with open(path) as f:
        for line in f:
            span = json.loads(line)
            if "name" not in span or "dur_us" not in span:
                failures.append(f"{path}: span missing name/dur_us")
                break
            n += 1
    print(f"ok: {os.path.basename(path)} ({n} spans)")

obs_cols = {"variant", "obs_flops", "obs_bytes", "obs_ai",
            "roofline_pct"}
for path in glob.glob(os.path.join(work, "*.csv")):
    if path.endswith("_failures.csv"):
        continue
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        missing = obs_cols - set(reader.fieldnames or [])
        if missing:
            failures.append(f"{path}: missing columns {sorted(missing)}")
            continue
        rows = list(reader)
    live = [r for r in rows if float(r["obs_flops"]) > 0]
    if not live:
        failures.append(f"{path}: no row carries counter-derived flops")
    print(f"ok: {os.path.basename(path)} "
          f"({len(live)}/{len(rows)} rows with counters)")

journals = glob.glob(os.path.join(work, "cache", "*.journal.jsonl"))
if not journals:
    failures.append("no run journal written")
for path in journals:
    with open(path) as f:
        entries = [json.loads(line) for line in f if line.strip()]
    bad = [e for e in entries
           if "obs_flops" not in e or "obs_bytes" not in e]
    if bad:
        failures.append(f"{path}: {len(bad)} entries missing obs fields")
    print(f"ok: {os.path.basename(path)} ({len(entries)} entries)")

if failures:
    for f in failures:
        print("FAIL:", f, file=sys.stderr)
    sys.exit(1)
EOF

echo "obs smoke run passed"
