// Tests for TTV (COO and HiCOO paths) against the dense reference.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/reference.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

TEST(TtvCoo, HandComputedThirdOrderExample)
{
    // x(0,0,:) = [1, 2], x(1,1,:) = [3, 0]; v = [10, 100].
    CooTensor x({2, 2, 2});
    x.append({0, 0, 0}, 1.0f);
    x.append({0, 0, 1}, 2.0f);
    x.append({1, 1, 0}, 3.0f);
    DenseVector v(2);
    v[0] = 10.0f;
    v[1] = 100.0f;
    CooTensor y = ttv_coo(x, v, 2);
    EXPECT_EQ(y.order(), 2u);
    EXPECT_EQ(y.nnz(), 2u);
    EXPECT_FLOAT_EQ(y.at({0, 0}), 210.0f);  // 1*10 + 2*100
    EXPECT_FLOAT_EQ(y.at({1, 1}), 30.0f);
}

TEST(TtvCoo, OutputHasOneNonzeroPerFiber)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({16, 16, 16}, 300, rng);
    CooTtvPlan plan = ttv_plan_coo(x, 1);
    EXPECT_EQ(plan.out_pattern.nnz(), plan.fibers.num_fibers());
    EXPECT_EQ(plan.out_pattern.order(), 2u);
}

TEST(TtvCoo, MatchesDenseReferenceOnAllModes)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({12, 10, 14}, 250, rng);
    DenseTensor dx = DenseTensor::from_coo(x);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseVector v = DenseVector::random(x.dim(mode), rng);
        CooTensor y = ttv_coo(x, v, mode);
        DenseTensor expected = ref_ttv(dx, v, mode);
        EXPECT_TRUE(tensors_almost_equal(y, expected.to_coo(), 1e-3))
            << "mode " << mode;
    }
}

TEST(TtvCoo, RejectsBadInputs)
{
    Rng rng(3);
    CooTensor x = CooTensor::random({8, 8, 8}, 50, rng);
    EXPECT_THROW(ttv_plan_coo(x, 3), PastaError);  // mode out of range
    CooTensor vec1d({8});
    EXPECT_THROW(ttv_plan_coo(vec1d, 0), PastaError);  // order 1
    CooTtvPlan plan = ttv_plan_coo(x, 0);
    DenseVector wrong(7);
    CooTensor out = plan.out_pattern;
    EXPECT_THROW(ttv_exec_coo(plan, wrong, out), PastaError);
}

TEST(TtvCoo, AllSchedulesAgree)
{
    Rng rng(4);
    CooTensor x = CooTensor::random({32, 32, 32}, 600, rng);
    DenseVector v = DenseVector::random(32, rng);
    CooTtvPlan plan = ttv_plan_coo(x, 2);
    CooTensor ref = plan.out_pattern;
    ttv_exec_coo(plan, v, ref, Schedule::kStatic);
    for (auto sched : {Schedule::kDynamic, Schedule::kGuided}) {
        CooTensor out = plan.out_pattern;
        ttv_exec_coo(plan, v, out, sched);
        EXPECT_TRUE(tensors_almost_equal(out, ref, 1e-4));
    }
}

TEST(TtvHicoo, MatchesCooResult)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({48, 48, 48}, 800, rng);
    DenseVector v = DenseVector::random(48, rng);
    for (Size mode = 0; mode < 3; ++mode) {
        CooTensor coo_result = ttv_coo(x, v, mode);
        HiCooTensor hicoo_result = ttv_hicoo(x, v, mode, 3);
        EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(hicoo_result),
                                         coo_result, 1e-3))
            << "mode " << mode;
    }
}

TEST(TtvHicoo, OutputBlocksMirrorInputBlocks)
{
    Rng rng(6);
    CooTensor x = CooTensor::random({64, 64, 64}, 500, rng);
    HicooTtvPlan plan = ttv_plan_hicoo(x, 2, 3);
    EXPECT_EQ(plan.out_pattern.num_blocks(), plan.input.num_blocks());
    EXPECT_EQ(plan.out_pattern.nnz(), plan.fptr.size() - 1);
    plan.out_pattern.validate();
}

TEST(TtvHicoo, FibersNeverSpanBlocks)
{
    Rng rng(7);
    CooTensor x = CooTensor::random({64, 64, 64}, 700, rng);
    HicooTtvPlan plan = ttv_plan_hicoo(x, 1, 3);
    const auto& bptr = plan.input.bptr();
    // Every block boundary must also be a fiber boundary.
    Size f = 0;
    for (Size b = 1; b < plan.input.num_blocks(); ++b) {
        while (plan.fptr[f] < bptr[b])
            ++f;
        EXPECT_EQ(plan.fptr[f], bptr[b]) << "block " << b;
    }
}

TEST(TtvCoo, SecondOrderReducesToMatVec)
{
    // Order-2 TTV on mode 1 is sparse matrix-vector multiply.
    CooTensor a({3, 3});
    a.append({0, 0}, 2.0f);
    a.append({0, 2}, 1.0f);
    a.append({2, 1}, 4.0f);
    DenseVector v(3);
    v[0] = 1.0f;
    v[1] = 2.0f;
    v[2] = 3.0f;
    CooTensor y = ttv_coo(a, v, 1);
    EXPECT_EQ(y.order(), 1u);
    EXPECT_FLOAT_EQ(y.at({0}), 5.0f);  // 2*1 + 1*3
    EXPECT_FLOAT_EQ(y.at({2}), 8.0f);  // 4*2
}

// Property sweep: COO and HiCOO TTV agree with the dense reference for
// every order/mode/block-size combination.
class TtvSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TtvSweep, BothFormatsMatchReference)
{
    const auto [order, block_bits] = GetParam();
    const Index dim = order <= 3 ? 16 : 8;
    Rng rng(300 + order * 10 + block_bits);
    CooTensor x =
        CooTensor::random(std::vector<Index>(order, dim), 120, rng);
    DenseTensor dx = DenseTensor::from_coo(x);
    for (Size mode = 0; mode < static_cast<Size>(order); ++mode) {
        DenseVector v = DenseVector::random(dim, rng);
        DenseTensor expected = ref_ttv(dx, v, mode);
        CooTensor y_coo = ttv_coo(x, v, mode);
        EXPECT_TRUE(
            tensors_almost_equal(y_coo, expected.to_coo(), 1e-3))
            << "COO order " << order << " mode " << mode;
        if (order >= 2) {
            HiCooTensor y_h = ttv_hicoo(x, v, mode, block_bits);
            EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(y_h),
                                             expected.to_coo(), 1e-3))
                << "HiCOO order " << order << " mode " << mode;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndBlocks, TtvSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(2, 3, 7)));

}  // namespace
}  // namespace pasta
