// Tests for the parallel LSD radix sort: key packing, permutation
// correctness, equivalence with comparator sorts on random and
// adversarial tensors (duplicates, 64-bit-overflowing dims that force the
// std::sort fallback), and thread-count determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/morton.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/coo_tensor.hpp"
#include "core/sort_radix.hpp"

namespace pasta {
namespace {

/// RAII thread-count override so a test can force a worker count without
/// leaking it into later tests.
class ScopedThreads {
  public:
    explicit ScopedThreads(int n) : saved_(num_threads())
    {
        set_num_threads(n);
    }
    ~ScopedThreads() { set_num_threads(saved_); }

  private:
    int saved_;
};

std::vector<std::uint64_t>
random_keys(Size n, std::uint64_t max_key, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) {
        k = static_cast<std::uint64_t>(rng.next_index(kMaxIndex)) << 32 |
            rng.next_index(kMaxIndex);
        if (max_key != ~std::uint64_t{0})
            k %= max_key + 1;
    }
    return keys;
}

TEST(RadixBits, BitsForCoversEdgeCases)
{
    EXPECT_EQ(radix::bits_for(0), 0u);
    EXPECT_EQ(radix::bits_for(1), 0u);
    EXPECT_EQ(radix::bits_for(2), 1u);
    EXPECT_EQ(radix::bits_for(3), 2u);
    EXPECT_EQ(radix::bits_for(256), 8u);
    EXPECT_EQ(radix::bits_for(257), 9u);
    EXPECT_EQ(radix::bits_for(kMaxIndex), 32u);
}

TEST(RadixBits, LexKeyFitDetection)
{
    // 3 x 21 bits = 63: fits.  Three full 32-bit modes = 96 bits: no.
    std::vector<Index> small = {1u << 21, 1u << 21, 1u << 21};
    std::vector<Index> huge = {kMaxIndex, kMaxIndex, kMaxIndex};
    std::vector<Size> order = {0, 1, 2};
    EXPECT_TRUE(radix::lex_key_fits(small, order));
    EXPECT_FALSE(radix::lex_key_fits(huge, order));
    EXPECT_FALSE(radix::morton_key_fits(huge, 7));
}

TEST(RadixSortPerm, SortsAndPermutesConsistently)
{
    std::vector<std::uint64_t> keys =
        random_keys(5000, ~std::uint64_t{0}, 1);
    const std::vector<std::uint64_t> original = keys;
    std::vector<Size> perm;
    radix::sort_perm(keys, perm);

    ASSERT_EQ(perm.size(), original.size());
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // perm[p] names the original slot of the element now at p.
    for (Size p = 0; p < keys.size(); ++p)
        EXPECT_EQ(keys[p], original[perm[p]]);
    // perm is a permutation: every source index exactly once.
    std::vector<Size> seen = perm;
    std::sort(seen.begin(), seen.end());
    for (Size p = 0; p < seen.size(); ++p)
        EXPECT_EQ(seen[p], p);
}

TEST(RadixSortPerm, StableOnDuplicates)
{
    // Heavy duplication: stability means equal keys keep their original
    // relative order, which the perm exposes directly.
    std::vector<std::uint64_t> keys = random_keys(4000, 7, 2);
    std::vector<Size> perm;
    radix::sort_perm(keys, perm);
    for (Size p = 1; p < keys.size(); ++p) {
        ASSERT_LE(keys[p - 1], keys[p]);
        if (keys[p - 1] == keys[p]) {
            EXPECT_LT(perm[p - 1], perm[p]) << "instability at " << p;
        }
    }
}

TEST(RadixSortPerm, MatchesStdStableSortAcrossKeyWidths)
{
    // Sweep key widths so pass-skipping (1..8 passes) is all exercised.
    for (unsigned shift : {0u, 7u, 15u, 31u, 47u, 63u}) {
        const std::uint64_t max_key =
            shift == 63 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << (shift + 1)) - 1;
        std::vector<std::uint64_t> keys = random_keys(3000, max_key, shift);
        std::vector<std::uint64_t> expected = keys;
        std::stable_sort(expected.begin(), expected.end());
        std::vector<Size> perm;
        radix::sort_perm(keys, perm);
        EXPECT_EQ(keys, expected) << "max_key " << max_key;
    }
}

TEST(RadixSortPerm, DeterministicAcrossThreadCounts)
{
    const std::vector<std::uint64_t> original = random_keys(6000, 1000, 3);
    std::vector<std::uint64_t> keys1 = original;
    std::vector<std::uint64_t> keys4 = original;
    std::vector<Size> perm1;
    std::vector<Size> perm4;
    {
        ScopedThreads one(1);
        radix::sort_perm(keys1, perm1);
    }
    {
        ScopedThreads four(4);
        radix::sort_perm(keys4, perm4);
    }
    EXPECT_EQ(keys1, keys4);
    EXPECT_EQ(perm1, perm4);
}

TEST(RadixSortPerm, HandlesEmptyAndSingleton)
{
    std::vector<std::uint64_t> keys;
    std::vector<Size> perm;
    radix::sort_perm(keys, perm);
    EXPECT_TRUE(perm.empty());
    keys = {42};
    radix::sort_perm(keys, perm);
    ASSERT_EQ(perm.size(), 1u);
    EXPECT_EQ(perm[0], 0u);
}

/// Comparator reference for lexicographic COO order under `mode_order`.
CooTensor
reference_sorted(const CooTensor& x, const std::vector<Size>& mode_order)
{
    CooTensor ref = x;
    std::vector<Size> perm(ref.nnz());
    std::iota(perm.begin(), perm.end(), 0);
    std::stable_sort(perm.begin(), perm.end(), [&](Size a, Size b) {
        for (Size m : mode_order) {
            if (ref.index(m, a) != ref.index(m, b))
                return ref.index(m, a) < ref.index(m, b);
        }
        return false;
    });
    ref.apply_permutation(perm);
    return ref;
}

void
expect_same_tensor(const CooTensor& a, const CooTensor& b)
{
    ASSERT_EQ(a.nnz(), b.nnz());
    for (Size p = 0; p < a.nnz(); ++p) {
        for (Size m = 0; m < a.order(); ++m)
            ASSERT_EQ(a.index(m, p), b.index(m, p)) << "pos " << p;
        // Values must ride along with their coordinates.
        ASSERT_EQ(a.value(p), b.value(p)) << "pos " << p;
    }
}

TEST(CooRadixSort, LexicographicMatchesComparatorReference)
{
    Rng rng(7);
    CooTensor x = CooTensor::random({100, 37, 64}, 2000, rng);
    // Distinct values tie each value to its coordinate.
    for (Size p = 0; p < x.nnz(); ++p)
        x.values()[p] = static_cast<Value>(p);
    const CooTensor expected = reference_sorted(x, {0, 1, 2});
    CooTensor sorted = x;
    sorted.sort_lexicographic();
    expect_same_tensor(sorted, expected);
}

TEST(CooRadixSort, ModeOrderPermutationsMatchReference)
{
    Rng rng(8);
    CooTensor x = CooTensor::random({31, 90, 17}, 1500, rng);
    for (Size p = 0; p < x.nnz(); ++p)
        x.values()[p] = static_cast<Value>(p);
    const std::vector<std::vector<Size>> orders = {
        {2, 1, 0}, {1, 0, 2}, {0, 2, 1}};
    for (const auto& order : orders) {
        CooTensor sorted = x;
        sorted.sort_by_mode_order(order);
        expect_same_tensor(sorted, reference_sorted(x, order));
    }
}

TEST(CooRadixSort, DuplicateCoordinatesSurviveSorting)
{
    // Adversarial: every non-zero in one of two coordinates.  Sum of
    // values (an order-independent invariant) must be preserved and the
    // stream must come out grouped.
    CooTensor x({4, 4, 4});
    for (int i = 0; i < 300; ++i)
        x.append({static_cast<Index>(i % 2 == 0 ? 3 : 1), 2, 1},
                 static_cast<Value>(i));
    CooTensor sorted = x;
    sorted.sort_lexicographic();
    expect_same_tensor(sorted, reference_sorted(x, {0, 1, 2}));
}

TEST(CooRadixSort, MaxIndexDimsFallBackToComparator)
{
    // Three full 32-bit modes need 96 key bits: exercises the std::sort
    // fallback paths while demanding identical ordering semantics.
    Rng rng(9);
    CooTensor x({kMaxIndex, kMaxIndex, kMaxIndex});
    for (int i = 0; i < 500; ++i)
        x.append({rng.next_index(kMaxIndex), rng.next_index(kMaxIndex),
                  rng.next_index(kMaxIndex)},
                 static_cast<Value>(i));
    CooTensor sorted = x;
    sorted.sort_lexicographic();
    expect_same_tensor(sorted, reference_sorted(x, {0, 1, 2}));
}

TEST(CooRadixSort, MortonMatchesComparatorReference)
{
    Rng rng(10);
    CooTensor x = CooTensor::random({512, 300, 128}, 3000, rng);
    for (Size p = 0; p < x.nnz(); ++p)
        x.values()[p] = static_cast<Value>(p);
    const unsigned bits = 5;

    // Reference: 128-bit MortonKey over block coords, lexicographic
    // tie-break on the full coordinate (the pre-radix implementation).
    CooTensor ref = x;
    {
        std::vector<MortonKey> keys(ref.nnz());
        Coordinate blocks(ref.order());
        for (Size p = 0; p < ref.nnz(); ++p) {
            for (Size m = 0; m < ref.order(); ++m)
                blocks[m] = ref.index(m, p) >> bits;
            keys[p] = morton_encode(blocks);
        }
        std::vector<Size> perm(ref.nnz());
        std::iota(perm.begin(), perm.end(), 0);
        std::stable_sort(perm.begin(), perm.end(), [&](Size a, Size b) {
            if (!(keys[a] == keys[b]))
                return keys[a] < keys[b];
            for (Size m = 0; m < ref.order(); ++m)
                if (ref.index(m, a) != ref.index(m, b))
                    return ref.index(m, a) < ref.index(m, b);
            return false;
        });
        ref.apply_permutation(perm);
    }

    CooTensor sorted = x;
    sorted.sort_morton(bits);
    expect_same_tensor(sorted, ref);
}

TEST(CooRadixSort, SortDeterministicAcrossThreadCounts)
{
    Rng rng(11);
    const CooTensor x = CooTensor::random({256, 256, 64}, 4000, rng);
    CooTensor a = x;
    CooTensor b = x;
    {
        ScopedThreads one(1);
        a.sort_lexicographic();
    }
    {
        ScopedThreads four(4);
        b.sort_lexicographic();
    }
    expect_same_tensor(a, b);
}

}  // namespace
}  // namespace pasta
