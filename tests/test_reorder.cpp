// Tests for index relabeling / reordering.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/reorder.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/reference.hpp"

namespace pasta {
namespace {

TEST(Reorder, IdentityAndRandomAreBijections)
{
    Rng rng(1);
    EXPECT_NO_THROW(check_relabeling(identity_relabeling(100), 100));
    EXPECT_NO_THROW(check_relabeling(random_relabeling(100, rng), 100));
}

TEST(Reorder, CheckRejectsNonBijections)
{
    EXPECT_THROW(check_relabeling({0, 0, 1}, 3), PastaError);
    EXPECT_THROW(check_relabeling({0, 1, 5}, 3), PastaError);
    EXPECT_THROW(check_relabeling({0, 1}, 3), PastaError);
}

TEST(Reorder, DegreeRelabelingRanksHubsFirst)
{
    CooTensor x({4, 8});
    // Index 2 of mode 0 has degree 3, index 0 degree 1, index 3 degree 2.
    x.append({2, 0}, 1.0f);
    x.append({2, 1}, 1.0f);
    x.append({2, 2}, 1.0f);
    x.append({3, 0}, 1.0f);
    x.append({3, 1}, 1.0f);
    x.append({0, 0}, 1.0f);
    const Relabeling perm = degree_relabeling(x, 0);
    EXPECT_EQ(perm[2], 0u);  // hottest index relabeled to 0
    EXPECT_EQ(perm[3], 1u);
    EXPECT_EQ(perm[0], 2u);
    EXPECT_EQ(perm[1], 3u);  // empty index last
}

TEST(Reorder, RelabelModePreservesValuesUnderInverse)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({16, 16, 16}, 200, rng);
    const Relabeling perm = random_relabeling(16, rng);
    CooTensor relabeled = relabel_mode(x, 1, perm);
    EXPECT_EQ(relabeled.nnz(), x.nnz());
    // Applying the inverse restores the tensor.
    Relabeling inverse(perm.size());
    for (Index old = 0; old < perm.size(); ++old)
        inverse[perm[old]] = old;
    CooTensor restored = relabel_mode(relabeled, 1, inverse);
    EXPECT_TRUE(tensors_almost_equal(restored, x));
}

TEST(Reorder, RelabelingIsKernelInvariant)
{
    // MTTKRP on a relabeled tensor with correspondingly relabeled factor
    // rows must produce the output with relabeled rows.
    Rng rng(3);
    CooTensor x = CooTensor::random({12, 12, 12}, 150, rng);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(12, 4, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix base(12, 4);
    mttkrp_coo_seq(x, factors, 0, base);

    const Relabeling perm = random_relabeling(12, rng);
    CooTensor relabeled = relabel_mode(x, 0, perm);
    DenseMatrix out(12, 4);
    mttkrp_coo_seq(relabeled, factors, 0, out);
    for (Index i = 0; i < 12; ++i)
        for (Size r = 0; r < 4; ++r)
            EXPECT_NEAR(out(perm[i], r), base(i, r), 1e-4)
                << "row " << i;
}

TEST(Reorder, DegreeReorderDensifiesHubTensorBlocks)
{
    // Power-law-ish tensor: a few hub indices scattered across the range.
    Rng rng(4);
    CooTensor x({1024, 1024, 1024});
    std::vector<Index> hubs;
    for (int h = 0; h < 8; ++h)
        hubs.push_back(rng.next_index(1024));
    for (int p = 0; p < 2000; ++p) {
        const Index i = hubs[rng.next_below(hubs.size())];
        const Index j = hubs[rng.next_below(hubs.size())];
        x.append({i, j, rng.next_index(1024)}, 1.0f);
    }
    x.sort_lexicographic();
    x.coalesce();
    const Size blocks_before = coo_to_hicoo(x, 4).num_blocks();
    CooTensor reordered = degree_reorder(x);
    const Size blocks_after = coo_to_hicoo(reordered, 4).num_blocks();
    EXPECT_LT(blocks_after, blocks_before);
    EXPECT_TRUE(tensors_almost_equal(
        x, x));  // sanity: helper itself is consistent
    // Reordering must not change the non-zero count or the value multiset.
    EXPECT_EQ(reordered.nnz(), x.nnz());
}

TEST(Reorder, DegreeReorderIsDeterministic)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({64, 64}, 300, rng);
    CooTensor a = degree_reorder(x);
    CooTensor b = degree_reorder(x);
    EXPECT_TRUE(a.same_pattern(b));
}

}  // namespace
}  // namespace pasta
