// Tests for the semi-sparse TTM (sCOO input) and broadcast TEW kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/reference.hpp"
#include "kernels/tew.hpp"
#include "kernels/tew_broadcast.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttm_scoo.hpp"
#include "methods/tucker.hpp"

namespace pasta {
namespace {

TEST(TtmScoo, MatchesExpandThenTtm)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({8, 10, 12}, 150, rng);
    DenseMatrix u1 = DenseMatrix::random(10, 4, rng);
    DenseMatrix u2 = DenseMatrix::random(12, 3, rng);

    // Chain via semi-sparse: (x x_1 u1) x_2 u2 without COO expansion.
    ScooTensor step1 = ttm_coo(x, u1, 1);
    ScooTensor chained = ttm_scoo(step1, u2, 2);

    // Reference: expand the intermediate and TTM again.
    CooTensor expanded = step1.to_coo();
    ScooTensor expected = ttm_coo(expanded, u2, 2);

    EXPECT_TRUE(tensors_almost_equal(chained.to_coo(),
                                     expected.to_coo(), 1e-3));
    EXPECT_EQ(chained.dense_modes(), (std::vector<Size>{1, 2}));
    EXPECT_EQ(chained.dims(), (std::vector<Index>{8, 4, 3}));
}

TEST(TtmScoo, ChainMatchesDenseReference)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({6, 7, 8, 5}, 120, rng);
    DenseMatrix u3 = DenseMatrix::random(5, 2, rng);
    DenseMatrix u1 = DenseMatrix::random(7, 3, rng);

    ScooTensor step1 = ttm_coo(x, u3, 3);
    ScooTensor step2 = ttm_scoo(step1, u1, 1);

    DenseTensor dx = DenseTensor::from_coo(x);
    DenseTensor expected = ref_ttm(ref_ttm(dx, u3, 3), u1, 1);
    EXPECT_TRUE(tensors_almost_equal(step2.to_coo(),
                                     expected.to_coo(), 1e-3));
}

TEST(TtmScoo, RejectsDenseOrLastSparseMode)
{
    Rng rng(3);
    CooTensor x = CooTensor::random({8, 8, 8}, 60, rng);
    DenseMatrix u = DenseMatrix::random(8, 2, rng);
    ScooTensor semi = ttm_coo(x, u, 1);  // mode 1 now dense
    EXPECT_THROW(ttm_scoo(semi, u, 1), PastaError);  // dense mode
    ScooTensor semi2 = ttm_scoo(semi, u, 0);         // modes {0} -> dense
    // Now only mode 2 is sparse: contracting it must throw.
    EXPECT_THROW(ttm_scoo(semi2, u, 2), PastaError);
    DenseMatrix wrong = DenseMatrix::random(9, 2, rng);
    EXPECT_THROW(ttm_scoo(semi, wrong, 0), PastaError);
}

TEST(TtmScoo, TuckerChainViaSemiSparseMatchesCooChain)
{
    Rng rng(4);
    CooTensor x = CooTensor::random({9, 10, 11}, 200, rng);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 2, rng));

    // COO-expansion chain (ttm_chain) vs semi-sparse chain.
    CooTensor via_coo = ttm_chain(x, mats, 2);
    ScooTensor step = ttm_coo(x, mats[0], 0);
    ScooTensor done = ttm_scoo(step, mats[1], 1);
    EXPECT_TRUE(
        tensors_almost_equal(done.to_coo(), via_coo, 1e-3));
}

TEST(TewBroadcast, SliceScalingByVector)
{
    // Scale each k-slice of a third-order tensor by a weight w[k]:
    // y order-1 aligned to x's mode 2.
    CooTensor x({4, 4, 3});
    x.append({0, 0, 0}, 1.0f);
    x.append({1, 1, 1}, 2.0f);
    x.append({2, 2, 2}, 3.0f);
    CooTensor w({3});
    w.append({0}, 10.0f);
    w.append({1}, 20.0f);
    w.append({2}, 30.0f);
    CooTensor z = tew_coo_broadcast(x, w, {2}, EwOp::kMul);
    EXPECT_TRUE(z.same_pattern(x));
    EXPECT_FLOAT_EQ(z.at({0, 0, 0}), 10.0f);
    EXPECT_FLOAT_EQ(z.at({1, 1, 1}), 40.0f);
    EXPECT_FLOAT_EQ(z.at({2, 2, 2}), 90.0f);
}

TEST(TewBroadcast, MatrixBroadcastOverThirdOrder)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({6, 7, 8}, 80, rng);
    CooTensor y({6, 8});
    for (Index i = 0; i < 6; ++i)
        for (Index k = 0; k < 8; ++k)
            y.append({i, k}, rng.next_float() + 0.5f);
    CooTensor z = tew_coo_broadcast(x, y, {0, 2}, EwOp::kMul);
    for (Size p = 0; p < z.nnz(); ++p) {
        const Value expected =
            x.value(p) * y.at({x.index(0, p), x.index(2, p)});
        EXPECT_FLOAT_EQ(z.value(p), expected) << "nnz " << p;
    }
}

TEST(TewBroadcast, MissingEntriesMultiplyToZero)
{
    CooTensor x({4, 4});
    x.append({0, 0}, 5.0f);
    x.append({3, 3}, 7.0f);
    CooTensor y({4});
    y.append({0}, 2.0f);  // index 3 missing -> zero
    CooTensor z = tew_coo_broadcast(x, y, {0}, EwOp::kMul);
    EXPECT_FLOAT_EQ(z.at({0, 0}), 10.0f);
    EXPECT_FLOAT_EQ(z.at({3, 3}), 0.0f);
}

TEST(TewBroadcast, DivisionByMissingEntryThrows)
{
    CooTensor x({4, 4});
    x.append({3, 3}, 7.0f);
    CooTensor y({4});
    y.append({0}, 2.0f);
    EXPECT_THROW(tew_coo_broadcast(x, y, {0}, EwOp::kDiv), PastaError);
}

TEST(TewBroadcast, DivisionByPresentEntries)
{
    CooTensor x({4, 4});
    x.append({1, 2}, 8.0f);
    CooTensor y({4});
    y.append({2}, 2.0f);
    CooTensor z = tew_coo_broadcast(x, y, {1}, EwOp::kDiv);
    EXPECT_FLOAT_EQ(z.at({1, 2}), 4.0f);
}

TEST(TewBroadcast, RejectsBadArguments)
{
    CooTensor x({4, 4, 4});
    x.append({0, 0, 0}, 1.0f);
    CooTensor y({4});
    y.append({0}, 1.0f);
    EXPECT_THROW(tew_coo_broadcast(x, y, {0}, EwOp::kAdd), PastaError);
    EXPECT_THROW(tew_coo_broadcast(x, y, {0, 1}, EwOp::kMul), PastaError);
    EXPECT_THROW(tew_coo_broadcast(x, y, {5}, EwOp::kMul), PastaError);
    CooTensor y2({4, 4});
    y2.append({0, 0}, 1.0f);
    EXPECT_THROW(tew_coo_broadcast(x, y2, {1, 0}, EwOp::kMul),
                 PastaError);  // not increasing
    CooTensor y3({5});
    y3.append({0}, 1.0f);
    EXPECT_THROW(tew_coo_broadcast(x, y3, {0}, EwOp::kMul),
                 PastaError);  // extent mismatch
}

TEST(TewBroadcast, SameOrderBroadcastEqualsSamePatternTew)
{
    // Full-order broadcast with matching pattern reduces to plain TEW
    // multiplication on the intersection (x's pattern).
    Rng rng(6);
    CooTensor x = CooTensor::random({8, 8}, 20, rng);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    CooTensor via_broadcast = tew_coo_broadcast(x, y, {0, 1}, EwOp::kMul);
    CooTensor via_tew = tew_coo(x, y, EwOp::kMul);
    EXPECT_TRUE(tensors_almost_equal(via_broadcast, via_tew));
}

}  // namespace
}  // namespace pasta
