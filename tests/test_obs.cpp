// Tests for the instrumentation layer (src/obs): mode arming, span
// recording/nesting/thread attribution, Chrome-trace export, the counter
// registry, trial delta accounting, and the GPU-sim counter feed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "gpusim/timing_model.hpp"
#include "kernels/mttkrp.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "roofline/machine.hpp"

namespace pasta::obs {
namespace {

/// Every test leaves the process disarmed; the registry and span
/// buffers are process-global.
class ObsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        set_mode(TraceMode::kOff);
        reset_counters();
        reset_spans();
    }
    void TearDown() override { set_mode(TraceMode::kOff); }
};

CooTensor
small_tensor(std::uint64_t seed)
{
    Rng rng(seed);
    return CooTensor::random({32, 32, 32}, 300, rng);
}

TEST_F(ObsTest, ModeNamesRoundTrip)
{
    EXPECT_STREQ(mode_name(TraceMode::kOff), "off");
    EXPECT_STREQ(mode_name(TraceMode::kCounters), "counters");
    EXPECT_STREQ(mode_name(TraceMode::kSpans), "spans");
    EXPECT_STREQ(mode_name(TraceMode::kFull), "full");
}

TEST_F(ObsTest, OffRecordsNothing)
{
    ASSERT_FALSE(spans_enabled());
    ASSERT_FALSE(counters_enabled());
    {
        PASTA_SPAN("off.span");
        add("off.flops", 100);
        add_worker("off.items", 0, 5);
        record_max("off.peak", 7);
        set_label("off.label", "value");
    }
    EXPECT_TRUE(collect_spans().empty());
    const CountersSnapshot snap = snapshot_counters();
    EXPECT_EQ(snap.value("off.flops"), 0);
    EXPECT_EQ(snap.max_of("off.peak"), 0u);
    EXPECT_EQ(snap.label("off.label"), "");
    EXPECT_EQ(last_label("off.label"), "");
}

TEST_F(ObsTest, CountersAccumulateAndSnapshot)
{
    set_mode(TraceMode::kCounters);
    add("t.flops", 10);
    add("t.flops", 20);
    add_worker("t.items", 0, 4);
    add_worker("t.items", 1, 12);
    record_max("t.peak", 5);
    record_max("t.peak", 50);
    record_max("t.peak", 25);
    set_label("t.variant", "alpha");
    set_label("t.variant", "beta");
    set_label("t.variant", "beta");

    const CountersSnapshot snap = snapshot_counters();
    EXPECT_EQ(snap.value("t.flops"), 30);
    EXPECT_EQ(snap.max_of("t.peak"), 50u);
    EXPECT_EQ(snap.label("t.variant"), "beta");
    EXPECT_EQ(last_label("t.variant"), "beta");
    const CounterSample* items = snap.find("t.items");
    ASSERT_NE(items, nullptr);
    EXPECT_EQ(items->total, 16u);
    ASSERT_EQ(items->worker.size(), 2u);
    EXPECT_EQ(items->worker[0], 4u);
    EXPECT_EQ(items->worker[1], 12u);
    // max/mean over {4, 12}: 12 / 8 = 1.5.
    EXPECT_DOUBLE_EQ(worker_imbalance(*items), 1.5);
}

TEST_F(ObsTest, DeltaSuffixSumIgnoresMaxCounters)
{
    set_mode(TraceMode::kCounters);
    add("a.flops", 100);
    const CountersSnapshot before = snapshot_counters();
    add("a.flops", 50);
    add("b.flops", 25);
    add("a.bytes", 600);
    record_max("c.peak_bytes", 4096);  // max-only: total stays 0
    const CountersSnapshot after = snapshot_counters();
    EXPECT_DOUBLE_EQ(delta_suffix_sum(before, after, ".flops"), 75.0);
    EXPECT_DOUBLE_EQ(delta_suffix_sum(before, after, ".bytes"), 600.0);
}

TEST_F(ObsTest, SpanNestingAndThreadAttribution)
{
    set_mode(TraceMode::kSpans);
    {
        SpanScope outer("outer.phase");
        SpanScope inner("inner.phase");
    }
    std::thread worker([] { PASTA_SPAN("worker.phase"); });
    worker.join();

    const std::vector<SpanRecord> spans = collect_spans();
    ASSERT_EQ(spans.size(), 3u);
    const SpanRecord* outer = nullptr;
    const SpanRecord* inner = nullptr;
    const SpanRecord* off_thread = nullptr;
    for (const auto& s : spans) {
        if (s.name == "outer.phase")
            outer = &s;
        else if (s.name == "inner.phase")
            inner = &s;
        else if (s.name == "worker.phase")
            off_thread = &s;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(off_thread, nullptr);
    EXPECT_EQ(inner->depth, outer->depth + 1);
    EXPECT_EQ(outer->tid, inner->tid);
    EXPECT_NE(off_thread->tid, outer->tid);
    // The inner span is contained in the outer one.
    EXPECT_GE(inner->ts_us, outer->ts_us);
    EXPECT_LE(inner->ts_us + inner->dur_us,
              outer->ts_us + outer->dur_us + 1e-3);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed)
{
    set_mode(TraceMode::kSpans);
    {
        PASTA_SPAN("trace.a");
        PASTA_SPAN("trace.\"quoted\"\\name");
    }
    const std::string path =
        (std::filesystem::temp_directory_path() / "pasta_test_trace.json")
            .string();
    ASSERT_TRUE(write_chrome_trace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    std::remove(path.c_str());
    while (!text.empty() && text.back() == '\n')
        text.pop_back();

    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.back(), '}');
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("trace.a"), std::string::npos);
    // The quote and backslash must be escaped in the output.
    EXPECT_NE(text.find("trace.\\\"quoted\\\"\\\\name"),
              std::string::npos);
    // Braces and brackets balance (escaped chars live inside strings,
    // which this crude check tolerates because escapes are paired).
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
}

TEST_F(ObsTest, SpansJsonlOneObjectPerLine)
{
    set_mode(TraceMode::kSpans);
    {
        PASTA_SPAN("jsonl.a");
    }
    {
        PASTA_SPAN("jsonl.b");
    }
    const std::string path =
        (std::filesystem::temp_directory_path() / "pasta_test_spans.jsonl")
            .string();
    ASSERT_TRUE(write_spans_jsonl(path));
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        if (lines == 1) {
            // First line is the writer-identity metadata object.
            EXPECT_NE(line.find("\"pastaMeta\""), std::string::npos);
            EXPECT_NE(line.find("\"monoToEpochUs\""), std::string::npos);
            continue;
        }
        EXPECT_NE(line.find("\"name\""), std::string::npos);
        EXPECT_NE(line.find("\"dur_us\""), std::string::npos);
    }
    std::remove(path.c_str());
    EXPECT_EQ(lines, 3u);  // meta line + two spans
}

TEST_F(ObsTest, DroppedSpanCountSurfacesInExportedTraceMeta)
{
    set_mode(TraceMode::kSpans);
    // Overflow one thread's ring (16384 slots) so drops are guaranteed.
    for (int i = 0; i < 20000; ++i) {
        PASTA_SPAN("overflow.span");
    }
    const std::uint64_t dropped = spans_dropped();
    ASSERT_GT(dropped, 0u);

    const std::string path = (std::filesystem::temp_directory_path() /
                              "pasta_test_dropped_trace.json")
                                 .string();
    ASSERT_TRUE(write_chrome_trace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::remove(path.c_str());

    // The exact drop count must appear in the pastaMeta block.
    EXPECT_NE(text.find("\"pastaMeta\""), std::string::npos);
    EXPECT_NE(text.find("\"spansDropped\":" + std::to_string(dropped)),
              std::string::npos);
}

TEST_F(ObsTest, WorkerSlotsBeyondCapSpillToOverflowCell)
{
    set_mode(TraceMode::kCounters);
    // 96 concurrent workers against the 64-slot cap: everything beyond
    // the cap must land in the shared overflow cell, not vanish.
    constexpr int kThreads = 96;
    constexpr std::uint64_t kPerWorker = 5;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w)
        threads.emplace_back(
            [w] { add_worker("ovf.items", w, kPerWorker); });
    for (auto& t : threads)
        t.join();

    const CountersSnapshot snap = snapshot_counters();
    const CounterSample* items = snap.find("ovf.items");
    ASSERT_NE(items, nullptr);
    EXPECT_EQ(items->total, kThreads * kPerWorker);
    ASSERT_EQ(items->worker.size(),
              static_cast<std::size_t>(kMaxWorkers));
    std::uint64_t attributed = 0;
    for (const std::uint64_t v : items->worker)
        attributed += v;
    EXPECT_EQ(attributed, kMaxWorkers * kPerWorker);
    EXPECT_EQ(items->overflow,
              (kThreads - kMaxWorkers) * kPerWorker);

    reset_counters();
    const CountersSnapshot cleared = snapshot_counters();
    const CounterSample* after = cleared.find("ovf.items");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->overflow, 0u);
    EXPECT_EQ(after->total, 0u);
}

TEST_F(ObsTest, KernelCountersMatchCostModel)
{
    set_mode(TraceMode::kCounters);
    const CooTensor x = small_tensor(7);
    Rng rng(9);
    const Size rank = 4;
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(x.dim(0), rank);
    mttkrp_coo(x, factors, 0, out);

    const CountersSnapshot snap = snapshot_counters();
    // Table I: MTTKRP-COO does N*M*R flops.
    EXPECT_EQ(snap.value("mttkrp.flops"),
              static_cast<double>(x.order() * x.nnz() * rank));
    EXPECT_GT(snap.value("mttkrp.bytes"), 0);
    EXPECT_NE(snap.label("mttkrp.variant"), "");
}

TEST_F(ObsTest, GpusimCountersRecordLaunchesAndTraffic)
{
    set_mode(TraceMode::kCounters);
    const CooTensor x = small_tensor(11);
    const CooTensor y = small_tensor(13);
    CooTensor z = x;
    const gpusim::LaunchProfile profile =
        gpusim::tew_gpu_coo(x, y, EwOp::kAdd, z);
    (void)gpusim::estimate_seconds(gpusim::tesla_p100(), profile);

    const CountersSnapshot snap = snapshot_counters();
    EXPECT_GE(snap.value("gpusim.launches"), 1);
    EXPECT_GT(snap.value("gpusim.sim_threads"), 0);
    EXPECT_GT(snap.value("gpusim.flops"), 0);
    EXPECT_GT(snap.value("gpusim.bytes"), 0);
    EXPECT_EQ(snap.value("gpusim.model_launches"), 1);
    EXPECT_GT(snap.max_of("gpusim.mem_peak_bytes"), 0u);
    EXPECT_LE(snap.max_of("gpusim.occupancy_pct"), 100u);
}

TEST_F(ObsTest, RooflinePctAgainstMachineBalance)
{
    const MachineSpec spec = bluesky();
    ASSERT_GT(machine_balance(spec), 0.0);
    // Below machine balance the roof is ai x bandwidth: 0.1 x 205 GB/s
    // = 20.5 GFLOPS; 10.25 measured is 50%.
    EXPECT_NEAR(roofline_pct(10.25, 0.1, spec), 50.0, 1e-9);
    // Degenerate inputs are 0, never NaN/inf.
    EXPECT_EQ(roofline_pct(0.0, 0.1, spec), 0.0);
    EXPECT_EQ(roofline_pct(10.0, 0.0, spec), 0.0);
}

}  // namespace
}  // namespace pasta::obs
