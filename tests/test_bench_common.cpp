// Tests for the bench harness plumbing: option parsing, suite loading,
// and the CPU/GPU measurement pipelines at tiny scale.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "gpusim/timing_model.hpp"

namespace pasta::bench {
namespace {

TEST(BenchOptions, EnvOverridesAreApplied)
{
    ::setenv("PASTA_SCALE", "0.002", 1);
    ::setenv("PASTA_RUNS", "7", 1);
    ::setenv("PASTA_CACHE", "/tmp/pasta_cache_test", 1);
    const BenchOptions options = options_from_env();
    EXPECT_DOUBLE_EQ(options.scale, 0.002);
    EXPECT_EQ(options.runs, 7u);
    EXPECT_EQ(options.cache_dir, "/tmp/pasta_cache_test");
    ::unsetenv("PASTA_SCALE");
    ::unsetenv("PASTA_RUNS");
    ::unsetenv("PASTA_CACHE");
}

TEST(BenchOptions, DefaultsMatchThePaperProtocol)
{
    ::unsetenv("PASTA_SCALE");
    ::unsetenv("PASTA_RUNS");
    const BenchOptions options = options_from_env();
    EXPECT_EQ(options.rank, 16u);           // §V-A2: R = 16
    EXPECT_EQ(options.block_bits, 7u);      // §V-A2: B = 128
    EXPECT_GT(options.scale, 0.0);
}

class SuitePipeline : public ::testing::Test {
  protected:
    void SetUp() override
    {
        options_.scale = 2e-5;  // tiny for test speed
        options_.runs = 1;
        options_.cache_dir.clear();  // no disk caching in tests
        suite_ = load_suite(options_);
    }

    BenchOptions options_;
    std::vector<NamedTensor> suite_;
};

TEST_F(SuitePipeline, LoadsAllThirtyDatasets)
{
    ASSERT_EQ(suite_.size(), 30u);
    EXPECT_EQ(suite_[0].id, "r1");
    EXPECT_EQ(suite_[29].id, "s15");
    for (const auto& entry : suite_)
        EXPECT_GT(entry.tensor.nnz(), 0u) << entry.id;
}

TEST_F(SuitePipeline, CpuSuiteProducesTenRunsPerTensor)
{
    // Use only the first two tensors to keep the test quick.
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 2);
    const auto runs = run_cpu_suite(small, options_);
    // 5 kernels x 2 formats x 2 tensors.
    EXPECT_EQ(runs.size(), 20u);
    for (const auto& run : runs) {
        EXPECT_GT(run.seconds, 0.0);
        EXPECT_GT(run.cost.flops, 0.0);
        EXPECT_GT(run.cost.bytes, 0.0);
    }
}

TEST_F(SuitePipeline, GpuSuiteProducesTenRunsPerTensor)
{
    std::vector<NamedTensor> small(suite_.begin() + 15,
                                   suite_.begin() + 17);
    const auto runs =
        run_gpu_suite(small, gpusim::tesla_v100(), options_);
    EXPECT_EQ(runs.size(), 20u);
    for (const auto& run : runs)
        EXPECT_GT(run.seconds, 0.0);
}

TEST_F(SuitePipeline, PrintHelpersDoNotCrash)
{
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const auto runs = run_cpu_suite(small, options_);
    print_figure("test figure", runs, bluesky());
    print_averages(runs, bluesky());
}

TEST_F(SuitePipeline, CsvExportRoundTrips)
{
    namespace fs = std::filesystem;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const auto runs = run_cpu_suite(small, options_);
    const fs::path dir = fs::temp_directory_path() / "pasta_csv_test";
    fs::create_directories(dir);
    const std::string path = (dir / "series.csv").string();
    export_csv(path, runs, bluesky());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "tensor,kernel,format,seconds,gflops,roofline_gflops,"
              "efficiency");
    Size lines = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, runs.size());
    fs::remove_all(dir);
}

TEST(CsvEnv, MaybeExportRespectsEnvVar)
{
    ::unsetenv("PASTA_CSV_DIR");
    // No env: must be a silent no-op.
    maybe_export_csv("noop", {}, bluesky());
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_csv_env";
    fs::create_directories(dir);
    ::setenv("PASTA_CSV_DIR", dir.c_str(), 1);
    maybe_export_csv("series", {}, bluesky());
    EXPECT_TRUE(fs::exists(dir / "series.csv"));
    ::unsetenv("PASTA_CSV_DIR");
    fs::remove_all(dir);
}

}  // namespace
}  // namespace pasta::bench
