// Tests for the bench harness plumbing: option parsing (including the
// strict env validation), suite loading, the CPU/GPU measurement
// pipelines at tiny scale, and the robustness layer wiring: fault-driven
// partial results, retry recovery, and journal checkpoint/resume.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "gpusim/timing_model.hpp"
#include "harness/fault.hpp"

namespace pasta::bench {
namespace {

/// Clears the global fault injector even when a test fails mid-way.
struct FaultGuard {
    ~FaultGuard() { harness::FaultInjector::instance().clear(); }
};

TEST(BenchOptions, EnvOverridesAreApplied)
{
    ::setenv("PASTA_SCALE", "0.002", 1);
    ::setenv("PASTA_RUNS", "7", 1);
    ::setenv("PASTA_CACHE", "/tmp/pasta_cache_test", 1);
    const BenchOptions options = options_from_env();
    EXPECT_DOUBLE_EQ(options.scale, 0.002);
    EXPECT_EQ(options.runs, 7u);
    EXPECT_EQ(options.cache_dir, "/tmp/pasta_cache_test");
    ::unsetenv("PASTA_SCALE");
    ::unsetenv("PASTA_RUNS");
    ::unsetenv("PASTA_CACHE");
}

TEST(BenchOptions, DefaultsMatchThePaperProtocol)
{
    ::unsetenv("PASTA_SCALE");
    ::unsetenv("PASTA_RUNS");
    const BenchOptions options = options_from_env();
    EXPECT_EQ(options.rank, 16u);           // §V-A2: R = 16
    EXPECT_EQ(options.block_bits, 7u);      // §V-A2: B = 128
    EXPECT_GT(options.scale, 0.0);
    EXPECT_TRUE(options.journal_enabled);
}

TEST(BenchOptions, MalformedScaleRejected)
{
    for (const char* bad : {"abc", "0", "-0.5", "1.5", "0.1x", ""}) {
        ::setenv("PASTA_SCALE", bad, 1);
        EXPECT_THROW(options_from_env(), PastaError) << "'" << bad << "'";
    }
    ::unsetenv("PASTA_SCALE");
}

TEST(BenchOptions, MalformedRunsRejected)
{
    // 0 runs would silently measure nothing; absurd counts are typos.
    for (const char* bad : {"abc", "0", "-3", "3.5", "99999999999999"}) {
        ::setenv("PASTA_RUNS", bad, 1);
        EXPECT_THROW(options_from_env(), PastaError) << "'" << bad << "'";
    }
    ::unsetenv("PASTA_RUNS");
}

TEST(BenchOptions, MalformedTrialPolicyRejected)
{
    ::setenv("PASTA_TRIAL_TIMEOUT", "soon", 1);
    EXPECT_THROW(options_from_env(), PastaError);
    ::setenv("PASTA_TRIAL_TIMEOUT", "-5", 1);
    EXPECT_THROW(options_from_env(), PastaError);
    ::unsetenv("PASTA_TRIAL_TIMEOUT");
    ::setenv("PASTA_TRIAL_RETRIES", "0", 1);
    EXPECT_THROW(options_from_env(), PastaError);
    ::unsetenv("PASTA_TRIAL_RETRIES");
    const BenchOptions options = options_from_env();
    EXPECT_EQ(options.trial_policy.max_attempts, 3);
}

TEST(BenchOptions, HangFaultArmsDefaultWatchdog)
{
    FaultGuard guard;
    ::setenv("PASTA_FAULT", "kernel.run:hang@99999", 1);
    ::unsetenv("PASTA_TRIAL_TIMEOUT");
    const BenchOptions options = options_from_env();
    EXPECT_GT(options.trial_policy.timeout_seconds, 0.0);
    ::unsetenv("PASTA_FAULT");
}

class SuitePipeline : public ::testing::Test {
  protected:
    void SetUp() override
    {
        options_.scale = 2e-5;  // tiny for test speed
        options_.runs = 1;
        options_.cache_dir.clear();  // no disk caching in tests
        suite_ = load_suite(options_);
    }

    BenchOptions options_;
    std::vector<NamedTensor> suite_;
};

TEST_F(SuitePipeline, LoadsAllThirtyDatasets)
{
    ASSERT_EQ(suite_.size(), 30u);
    EXPECT_EQ(suite_[0].id, "r1");
    EXPECT_EQ(suite_[29].id, "s15");
    for (const auto& entry : suite_)
        EXPECT_GT(entry.tensor.nnz(), 0u) << entry.id;
}

TEST_F(SuitePipeline, CpuSuiteProducesTenRunsPerTensor)
{
    // Use only the first two tensors to keep the test quick.
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 2);
    const SuiteResult result = run_cpu_suite(small, options_);
    // 5 kernels x 2 formats x 2 tensors.
    EXPECT_EQ(result.runs.size(), 20u);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.resumed, 0u);
    for (const auto& run : result.runs) {
        EXPECT_GT(run.seconds, 0.0);
        EXPECT_GT(run.cost.flops, 0.0);
        EXPECT_GT(run.cost.bytes, 0.0);
    }
}

TEST_F(SuitePipeline, GpuSuiteProducesTenRunsPerTensor)
{
    std::vector<NamedTensor> small(suite_.begin() + 15,
                                   suite_.begin() + 17);
    const SuiteResult result =
        run_gpu_suite(small, gpusim::tesla_v100(), options_);
    EXPECT_EQ(result.runs.size(), 20u);
    EXPECT_TRUE(result.complete());
    for (const auto& run : result.runs)
        EXPECT_GT(run.seconds, 0.0);
}

TEST_F(SuitePipeline, PrintHelpersDoNotCrash)
{
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const SuiteResult result = run_cpu_suite(small, options_);
    print_figure("test figure", result.runs, bluesky());
    print_averages(result.runs, bluesky());
    print_failure_summary(result);
}

TEST_F(SuitePipeline, CsvExportRoundTrips)
{
    namespace fs = std::filesystem;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const SuiteResult result = run_cpu_suite(small, options_);
    const fs::path dir = fs::temp_directory_path() / "pasta_csv_test";
    fs::create_directories(dir);
    const std::string path = (dir / "series.csv").string();
    export_csv(path, result.runs, bluesky());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "tensor,kernel,format,seconds,gflops,roofline_gflops,"
              "efficiency,variant,obs_flops,obs_bytes,obs_ai,"
              "roofline_pct,mem_peak");
    Size lines = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, result.runs.size());
    fs::remove_all(dir);
}

TEST_F(SuitePipeline, InjectedKernelFaultsYieldPartialResults)
{
    FaultGuard guard;
    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("kernel.run:throw"), 7);
    options_.trial_policy.max_attempts = 1;
    options_.trial_policy.backoff_initial_s = 0.0;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 2);
    const SuiteResult result = run_cpu_suite(small, options_);
    EXPECT_EQ(result.runs.size(), 0u);
    EXPECT_EQ(result.failures.size(), 20u);
    for (const auto& f : result.failures) {
        EXPECT_FALSE(f.timed_out);
        EXPECT_NE(f.error.find("injected fault"), std::string::npos);
    }
    // Partial rendering must not crash on fully-missing series.
    print_figure("faulted figure", result.runs, bluesky());
    print_failure_summary(result);
}

TEST_F(SuitePipeline, ProbabilisticFaultsSkipOnlySomeTrials)
{
    FaultGuard guard;
    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("kernel.run:throw:0.3"), 1234);
    options_.trial_policy.max_attempts = 1;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 2);
    const SuiteResult result = run_cpu_suite(small, options_);
    EXPECT_EQ(result.runs.size() + result.failures.size(), 20u);
    EXPECT_GT(result.runs.size(), 0u);       // 0.3^20 ~ 3.5e-11
    EXPECT_GT(result.failures.size(), 0u);   // 0.7^20 ~ 8e-4
    print_figure("partial figure", result.runs, bluesky());
    print_failure_summary(result);
}

TEST_F(SuitePipeline, RetryRecoversFromTransientFault)
{
    FaultGuard guard;
    // Fires exactly once, on the very first kernel.run hit; the retry
    // must recover it and every later trial is untouched.
    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("kernel.run:throw@1"), 7);
    options_.trial_policy.max_attempts = 3;
    options_.trial_policy.backoff_initial_s = 0.001;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const SuiteResult result = run_cpu_suite(small, options_);
    EXPECT_EQ(result.runs.size(), 10u);
    EXPECT_TRUE(result.complete());
}

TEST_F(SuitePipeline, ContextFaultFailsWholeTensor)
{
    FaultGuard guard;
    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("alloc:oom"), 7);
    options_.trial_policy.max_attempts = 1;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);
    const SuiteResult result = run_cpu_suite(small, options_);
    EXPECT_EQ(result.runs.size(), 0u);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].kernel, "*");
    EXPECT_NE(result.failures[0].error.find("out of memory"),
              std::string::npos);
}

TEST_F(SuitePipeline, JournalResumeSkipsCompletedTrials)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_journal_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    options_.cache_dir = dir.string();
    options_.journal_stem = "resume_test";
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 2);

    const SuiteResult first = run_cpu_suite(small, options_);
    EXPECT_EQ(first.runs.size(), 20u);
    EXPECT_EQ(first.resumed, 0u);
    bool journal_seen = false;
    for (const auto& e : fs::directory_iterator(dir))
        journal_seen = journal_seen ||
                       e.path().string().find("resume_test") !=
                           std::string::npos;
    EXPECT_TRUE(journal_seen);

    // Second invocation must restore every trial without re-measuring.
    const SuiteResult second = run_cpu_suite(small, options_);
    EXPECT_EQ(second.runs.size(), 20u);
    EXPECT_EQ(second.resumed, 20u);
    for (const auto& run : first.runs) {
        bool matched = false;
        for (const auto& replay : second.runs)
            if (replay.tensor_id == run.tensor_id &&
                replay.kernel == run.kernel &&
                replay.format == run.format) {
                EXPECT_DOUBLE_EQ(replay.seconds, run.seconds);
                EXPECT_DOUBLE_EQ(replay.cost.flops, run.cost.flops);
                matched = true;
            }
        EXPECT_TRUE(matched);
    }
    fs::remove_all(dir);
}

TEST_F(SuitePipeline, JournalResumeRetriesFailedTrials)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "pasta_journal_retry_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    options_.cache_dir = dir.string();
    options_.journal_stem = "retry_test";
    options_.trial_policy.max_attempts = 1;
    std::vector<NamedTensor> small(suite_.begin(), suite_.begin() + 1);

    {
        FaultGuard guard;
        harness::FaultInjector::instance().configure(
            harness::parse_fault_spec("kernel.run:throw"), 7);
        const SuiteResult faulted = run_cpu_suite(small, options_);
        EXPECT_EQ(faulted.failures.size(), 10u);
    }
    // Faults cleared: the rerun retries everything the journal marked
    // failed and completes the campaign.
    const SuiteResult recovered = run_cpu_suite(small, options_);
    EXPECT_EQ(recovered.runs.size(), 10u);
    EXPECT_EQ(recovered.resumed, 0u);
    EXPECT_TRUE(recovered.complete());
    fs::remove_all(dir);
}

TEST(CsvEnv, MaybeExportRespectsEnvVar)
{
    ::unsetenv("PASTA_CSV_DIR");
    // No env: must be a silent no-op.
    maybe_export_csv("noop", std::vector<MeasuredRun>{}, bluesky());
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_csv_env";
    fs::create_directories(dir);
    ::setenv("PASTA_CSV_DIR", dir.c_str(), 1);
    maybe_export_csv("series", std::vector<MeasuredRun>{}, bluesky());
    EXPECT_TRUE(fs::exists(dir / "series.csv"));
    ::unsetenv("PASTA_CSV_DIR");
    fs::remove_all(dir);
}

TEST(CsvEnv, SuiteResultExportWritesFailuresCsv)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_csv_fail";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ::setenv("PASTA_CSV_DIR", dir.c_str(), 1);
    SuiteResult result;
    result.failures.push_back({"r1", "TTV", "COO",
                               "injected fault, with comma", true, 2,
                               "timeout"});
    maybe_export_csv("faulty", result, bluesky());
    EXPECT_TRUE(fs::exists(dir / "faulty.csv"));
    ASSERT_TRUE(fs::exists(dir / "faulty_failures.csv"));
    std::ifstream in(dir / "faulty_failures.csv");
    std::string header, row;
    std::getline(in, header);
    EXPECT_EQ(header,
              "tensor,kernel,format,class,timed_out,attempts,error");
    std::getline(in, row);
    EXPECT_NE(row.find("r1,TTV,COO,timeout,1,2"), std::string::npos);
    ::unsetenv("PASTA_CSV_DIR");
    fs::remove_all(dir);
}

}  // namespace
}  // namespace pasta::bench
