// Tests for the GPU simulation substrate: SIMT launch semantics, the
// timing model, and the GPU kernel implementations vs. CPU results.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "gpusim/device.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "gpusim/timing_model.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"

namespace pasta::gpusim {
namespace {

TEST(Device, LaunchRunsEveryThreadOnce)
{
    const Size n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits)
        h = 0;
    launch({grid_blocks(n, 64), 1, 1}, {64, 1, 1},
           [&](const ThreadCtx& ctx) {
               const Size tid = ctx.global_x();
               if (tid < n)
                   ++hits[tid];
           });
    for (Size i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Device, TwoDimensionalThreadBlocks)
{
    // 2-D block: every (x, y) pair must appear once per block.
    std::atomic<int> count{0};
    launch({3, 1, 1}, {4, 8, 1}, [&](const ThreadCtx& ctx) {
        EXPECT_LT(ctx.thread_idx.x, 4u);
        EXPECT_LT(ctx.thread_idx.y, 8u);
        ++count;
    });
    EXPECT_EQ(count.load(), 3 * 4 * 8);
}

TEST(Device, GridBlocksCeilDiv)
{
    EXPECT_EQ(grid_blocks(0, 256), 0u);
    EXPECT_EQ(grid_blocks(1, 256), 1u);
    EXPECT_EQ(grid_blocks(256, 256), 1u);
    EXPECT_EQ(grid_blocks(257, 256), 2u);
}

TEST(Device, AtomicAddAccumulatesAcrossBlocks)
{
    Value total = 0;
    launch({16, 1, 1}, {64, 1, 1},
           [&](const ThreadCtx&) { atomic_add(&total, 1.0f); });
    EXPECT_FLOAT_EQ(total, 16.0f * 64.0f);
}

TEST(TimingModel, LptMakespanBalanced)
{
    // 8 equal items over 4 bins: makespan = 2 items.
    EXPECT_DOUBLE_EQ(lpt_makespan(std::vector<double>(8, 1.0), 4), 2.0);
}

TEST(TimingModel, LptMakespanDominatedByLargestItem)
{
    std::vector<double> work = {100.0, 1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(lpt_makespan(work, 4), 100.0);
}

TEST(TimingModel, LptMakespanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(lpt_makespan({}, 8), 0.0);
}

TEST(TimingModel, MemoryBoundTimeScalesWithBytes)
{
    const DeviceSpec spec = tesla_p100();
    LaunchProfile small;
    small.flops = 1000;
    small.dram_bytes = 1 << 20;
    small.working_set_bytes = 1 << 30;  // not cached
    LaunchProfile big = small;
    big.dram_bytes = Size{1} << 30;
    big.working_set_bytes = Size{1} << 31;
    EXPECT_GT(estimate_seconds(spec, big), estimate_seconds(spec, small));
}

TEST(TimingModel, CachedWorkingSetIsFaster)
{
    const DeviceSpec spec = tesla_v100();
    LaunchProfile prof;
    prof.flops = 1000;
    prof.dram_bytes = 1 << 22;
    prof.working_set_bytes = 1 << 22;  // fits the 6 MB L2
    LaunchProfile uncached = prof;
    uncached.working_set_bytes = Size{1} << 30;
    EXPECT_LT(estimate_seconds(spec, prof),
              estimate_seconds(spec, uncached));
}

TEST(TimingModel, ImbalancedBlocksSlowerThanBalanced)
{
    const DeviceSpec spec = tesla_p100();
    LaunchProfile balanced;
    balanced.dram_bytes = Size{1} << 28;
    balanced.working_set_bytes = Size{1} << 30;
    balanced.block_bytes.assign(
        1024, static_cast<double>(balanced.dram_bytes) / 1024);
    LaunchProfile skewed = balanced;
    // Same total traffic, all concentrated in a handful of blocks.
    skewed.block_bytes.assign(1024, 0.0);
    for (int i = 0; i < 4; ++i)
        skewed.block_bytes[i] =
            static_cast<double>(skewed.dram_bytes) / 4;
    EXPECT_GT(estimate_seconds(spec, skewed),
              estimate_seconds(spec, balanced));
}

TEST(TimingModel, AtomicsAddTimeAndVoltaIsCheaper)
{
    LaunchProfile prof;
    prof.dram_bytes = 1 << 24;
    prof.working_set_bytes = Size{1} << 30;
    LaunchProfile with_atomics = prof;
    with_atomics.atomics = Size{1} << 26;
    const DeviceSpec p100 = tesla_p100();
    const DeviceSpec v100 = tesla_v100();
    EXPECT_GT(estimate_seconds(p100, with_atomics),
              estimate_seconds(p100, prof));
    const double p100_penalty = estimate_seconds(p100, with_atomics) -
                                estimate_seconds(p100, prof);
    const double v100_penalty = estimate_seconds(v100, with_atomics) -
                                estimate_seconds(v100, prof);
    EXPECT_LT(v100_penalty, p100_penalty);
}

TEST(TimingModel, ProfileMergeAccumulates)
{
    LaunchProfile a;
    a.flops = 10;
    a.dram_bytes = 100;
    a.atomics = 1;
    a.working_set_bytes = 50;
    a.block_bytes = {1.0};
    LaunchProfile b;
    b.flops = 20;
    b.dram_bytes = 200;
    b.atomics = 2;
    b.working_set_bytes = 500;
    b.block_bytes = {2.0, 3.0};
    a.merge(b);
    EXPECT_EQ(a.flops, 30u);
    EXPECT_EQ(a.dram_bytes, 300u);
    EXPECT_EQ(a.atomics, 3u);
    EXPECT_EQ(a.working_set_bytes, 500u);
    EXPECT_EQ(a.block_bytes.size(), 3u);
}

class GpuKernels : public ::testing::Test {
  protected:
    void SetUp() override
    {
        Rng rng(42);
        x_ = CooTensor::random({24, 24, 24}, 400, rng);
        y_ = x_;
        for (auto& v : y_.values())
            v = rng.next_float() + 0.5f;
        v_ = DenseVector::random(24, rng);
        u_ = DenseMatrix::random(24, 8, rng);
        for (int m = 0; m < 3; ++m)
            mats_.push_back(DenseMatrix::random(24, 8, rng));
    }

    FactorList factors() const
    {
        return {&mats_[0], &mats_[1], &mats_[2]};
    }

    CooTensor x_;
    CooTensor y_;
    DenseVector v_;
    DenseMatrix u_;
    std::vector<DenseMatrix> mats_;
};

TEST_F(GpuKernels, TewMatchesCpu)
{
    CooTensor z = x_;
    LaunchProfile prof = tew_gpu_coo(x_, y_, EwOp::kAdd, z);
    CooTensor expected = tew_coo(x_, y_, EwOp::kAdd);
    EXPECT_TRUE(tensors_almost_equal(z, expected));
    EXPECT_EQ(prof.flops, x_.nnz());
    EXPECT_EQ(prof.dram_bytes, 12 * x_.nnz());
}

TEST_F(GpuKernels, TewHicooMatchesCpu)
{
    HiCooTensor hx = coo_to_hicoo(x_, 3);
    HiCooTensor hy = coo_to_hicoo(y_, 3);
    HiCooTensor hz = hx;
    tew_gpu_hicoo(hx, hy, EwOp::kMul, hz);
    CooTensor expected = tew_coo(x_, y_, EwOp::kMul);
    EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(hz), expected));
}

TEST_F(GpuKernels, TsMatchesCpu)
{
    CooTensor out = x_;
    LaunchProfile prof = ts_gpu_coo(x_, TsOp::kMul, 2.0f, out);
    CooTensor expected = ts_coo(x_, TsOp::kMul, 2.0f);
    EXPECT_TRUE(tensors_almost_equal(out, expected));
    EXPECT_EQ(prof.dram_bytes, 8 * x_.nnz());
}

TEST_F(GpuKernels, TtvMatchesCpuOnAllModes)
{
    for (Size mode = 0; mode < 3; ++mode) {
        CooTtvPlan plan = ttv_plan_coo(x_, mode);
        CooTensor out = plan.out_pattern;
        LaunchProfile prof = ttv_gpu_coo(plan, v_, out);
        CooTensor expected = ttv_coo(x_, v_, mode);
        EXPECT_TRUE(tensors_almost_equal(out, expected, 1e-3))
            << "mode " << mode;
        EXPECT_EQ(prof.flops, 2 * x_.nnz());
        EXPECT_FALSE(prof.block_bytes.empty());
    }
}

TEST_F(GpuKernels, TtvHicooMatchesCpu)
{
    HicooTtvPlan plan = ttv_plan_hicoo(x_, 1, 3);
    HiCooTensor out = plan.out_pattern;
    ttv_gpu_hicoo(plan, v_, out);
    CooTensor expected = ttv_coo(x_, v_, 1);
    EXPECT_TRUE(
        tensors_almost_equal(hicoo_to_coo(out), expected, 1e-3));
}

TEST_F(GpuKernels, TtmMatchesCpuOnAllModes)
{
    for (Size mode = 0; mode < 3; ++mode) {
        CooTtmPlan plan = ttm_plan_coo(x_, mode, 8);
        ScooTensor out = plan.out_pattern;
        LaunchProfile prof = ttm_gpu_coo(plan, u_, out);
        ScooTensor expected = ttm_coo(x_, u_, mode);
        EXPECT_TRUE(tensors_almost_equal(out.to_coo(),
                                         expected.to_coo(), 1e-3))
            << "mode " << mode;
        EXPECT_EQ(prof.atomics, x_.nnz() * 8);
    }
}

TEST_F(GpuKernels, TtmHicooMatchesCpu)
{
    HicooTtmPlan plan = ttm_plan_hicoo(x_, 2, 8, 3);
    SHiCooTensor out = plan.out_pattern;
    ttm_gpu_hicoo(plan, u_, out);
    ScooTensor expected = ttm_coo(x_, u_, 2);
    EXPECT_TRUE(tensors_almost_equal(out.to_scoo().to_coo(),
                                     expected.to_coo(), 1e-3));
}

TEST_F(GpuKernels, MttkrpMatchesCpuOnAllModes)
{
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix out(24, 8);
        LaunchProfile prof = mttkrp_gpu_coo(x_, factors(), mode, out);
        DenseMatrix expected(24, 8);
        mttkrp_coo_seq(x_, factors(), mode, expected);
        EXPECT_LT(max_abs_diff(out, expected), 1e-3) << "mode " << mode;
        EXPECT_EQ(prof.flops, 3 * x_.nnz() * 8);
    }
}

TEST_F(GpuKernels, MttkrpHicooMatchesCpuAndReportsImbalance)
{
    HiCooTensor hx = coo_to_hicoo(x_, 3);
    DenseMatrix out(24, 8);
    LaunchProfile prof = mttkrp_gpu_hicoo(hx, factors(), 0, out);
    DenseMatrix expected(24, 8);
    mttkrp_coo_seq(x_, factors(), 0, expected);
    EXPECT_LT(max_abs_diff(out, expected), 1e-3);
    // One profile entry per tensor block.
    EXPECT_EQ(prof.block_bytes.size(), hx.num_blocks());
}

TEST_F(GpuKernels, HicooMttkrpSlowerThanCooOnSkewedBlocks)
{
    // Build a tensor with one massive block and many singletons: the
    // block-parallel HiCOO GPU kernel must model slower than COO
    // (Observation 4).
    CooTensor skew({256, 256, 256});
    Rng rng(11);
    for (Index i = 0; i < 6; ++i)
        for (Index j = 0; j < 6; ++j)
            for (Index k = 0; k < 6; ++k)
                skew.append({i, j, k}, 1.0f);  // dense corner block
    for (int p = 0; p < 300; ++p)
        skew.append({rng.next_index(256), rng.next_index(256),
                     rng.next_index(256)},
                    1.0f);
    skew.sort_lexicographic();
    skew.coalesce();
    std::vector<DenseMatrix> mats;
    for (int m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(256, 16, rng));
    FactorList fl = {&mats[0], &mats[1], &mats[2]};
    HiCooTensor hx = coo_to_hicoo(skew, 3);

    DenseMatrix out1(256, 16);
    DenseMatrix out2(256, 16);
    LaunchProfile coo_prof = mttkrp_gpu_coo(skew, fl, 0, out1);
    LaunchProfile hicoo_prof = mttkrp_gpu_hicoo(hx, fl, 0, out2);
    EXPECT_LT(max_abs_diff(out1, out2), 1e-2);
    const DeviceSpec spec = tesla_p100();
    EXPECT_GT(estimate_seconds(spec, hicoo_prof),
              estimate_seconds(spec, coo_prof));
}

}  // namespace
}  // namespace pasta::gpusim
