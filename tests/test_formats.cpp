// Unit tests for the sCOO, HiCOO, gHiCOO, and sHiCOO formats.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/dense.hpp"
#include "core/ghicoo_tensor.hpp"
#include "core/hicoo_tensor.hpp"
#include "core/scoo_tensor.hpp"
#include "core/shicoo_tensor.hpp"

namespace pasta {
namespace {

TEST(ScooTensor, ConstructionSplitsModes)
{
    ScooTensor t({8, 3, 8}, {1});
    EXPECT_EQ(t.order(), 3u);
    EXPECT_EQ(t.sparse_modes(), (std::vector<Size>{0, 2}));
    EXPECT_EQ(t.dense_modes(), (std::vector<Size>{1}));
    EXPECT_EQ(t.stripe_volume(), 3u);
    EXPECT_EQ(t.num_sparse(), 0u);
}

TEST(ScooTensor, RejectsBadModeLists)
{
    EXPECT_THROW(ScooTensor({4, 4}, {}), PastaError);       // no dense mode
    EXPECT_THROW(ScooTensor({4, 4}, {0, 1}), PastaError);   // no sparse mode
    EXPECT_THROW(ScooTensor({4, 4}, {5}), PastaError);      // out of range
    EXPECT_THROW(ScooTensor({4, 4, 4}, {1, 0}), PastaError);  // not sorted
}

TEST(ScooTensor, AppendStripeAndElementAccess)
{
    ScooTensor t({4, 3, 4}, {1});
    Index coords[2] = {2, 1};  // sparse modes 0 and 2
    const Size pos = t.append_stripe(coords);
    EXPECT_EQ(t.num_sparse(), 1u);
    t.stripe(pos)[0] = 10.0f;
    t.stripe(pos)[2] = 30.0f;
    EXPECT_FLOAT_EQ(t.at({2, 0, 1}), 10.0f);
    EXPECT_FLOAT_EQ(t.at({2, 1, 1}), 0.0f);
    EXPECT_FLOAT_EQ(t.at({2, 2, 1}), 30.0f);
    EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 0.0f);
    t.validate();
}

TEST(ScooTensor, ToCooDropsZerosInsideStripes)
{
    ScooTensor t({4, 3, 4}, {1});
    Index coords[2] = {1, 2};
    const Size pos = t.append_stripe(coords);
    t.stripe(pos)[1] = 7.0f;
    CooTensor coo = t.to_coo();
    EXPECT_EQ(coo.nnz(), 1u);
    EXPECT_FLOAT_EQ(coo.at({1, 1, 2}), 7.0f);
}

TEST(ScooTensor, StorageCountsIndicesAndStripes)
{
    ScooTensor t({4, 3, 4}, {1});
    Index coords[2] = {0, 0};
    t.append_stripe(coords);
    t.append_stripe(coords);
    // 2 sparse coords x 2 sparse modes x 4B + 2 stripes x 3 x 4B.
    EXPECT_EQ(t.storage_bytes(), 2u * 2 * 4 + 2u * 3 * 4);
}

TEST(HiCooTensor, ConstructionValidatesBlockBits)
{
    EXPECT_NO_THROW(HiCooTensor({16, 16}, 3));
    EXPECT_THROW(HiCooTensor({16, 16}, 0), PastaError);
    EXPECT_THROW(HiCooTensor({16, 16}, 9), PastaError);
}

TEST(HiCooTensor, AppendBlockAndEntries)
{
    HiCooTensor t({16, 16}, 2);  // 4x4 blocks
    BIndex block[2] = {1, 2};
    t.append_block(block);
    EIndex e1[2] = {0, 3};
    EIndex e2[2] = {2, 1};
    t.append_entry(e1, 5.0f);
    t.append_entry(e2, 6.0f);
    EXPECT_EQ(t.num_blocks(), 1u);
    EXPECT_EQ(t.nnz(), 2u);
    EXPECT_EQ(t.coordinate(0, 0, 0), 4u);   // 1*4 + 0
    EXPECT_EQ(t.coordinate(1, 0, 0), 11u);  // 2*4 + 3
    EXPECT_EQ(t.coordinate(0, 0, 1), 6u);
    EXPECT_EQ(t.coordinate(1, 0, 1), 9u);
    t.validate();
}

TEST(HiCooTensor, StorageMatchesPaperFormula)
{
    // n_b(4N+8) + M(N+4) bytes.
    HiCooTensor t({16, 16, 16}, 2);
    BIndex block[3] = {0, 0, 0};
    t.append_block(block);
    EIndex e[3] = {1, 1, 1};
    t.append_entry(e, 1.0f);
    t.append_entry(e, 2.0f);
    EXPECT_EQ(t.storage_bytes(), 1u * (4 * 3 + 8) + 2u * (3 + 4));
}

TEST(HiCooTensor, BlockPopulationStats)
{
    HiCooTensor t({16, 16}, 2);
    BIndex b0[2] = {0, 0};
    BIndex b1[2] = {1, 1};
    EIndex e[2] = {0, 0};
    t.append_block(b0);
    t.append_entry(e, 1.0f);
    t.append_entry(e, 1.0f);
    t.append_entry(e, 1.0f);
    t.append_block(b1);
    t.append_entry(e, 1.0f);
    EXPECT_EQ(t.max_block_nnz(), 3u);
    EXPECT_DOUBLE_EQ(t.mean_block_nnz(), 2.0);
}

TEST(HiCooTensor, ValidateCatchesEmptyBlock)
{
    HiCooTensor t({16, 16}, 2);
    BIndex b[2] = {0, 0};
    t.append_block(b);
    t.append_block(b);  // first block left empty
    EIndex e[2] = {0, 0};
    t.append_entry(e, 1.0f);
    EXPECT_THROW(t.validate(), PastaError);
}

TEST(GHiCooTensor, ConstructionSplitsModes)
{
    GHiCooTensor t({16, 16, 16}, 2, {true, true, false});
    EXPECT_EQ(t.compressed_modes(), (std::vector<Size>{0, 1}));
    EXPECT_EQ(t.uncompressed_modes(), (std::vector<Size>{2}));
    EXPECT_TRUE(t.is_compressed(0));
    EXPECT_FALSE(t.is_compressed(2));
}

TEST(GHiCooTensor, RequiresACompressedMode)
{
    EXPECT_THROW(GHiCooTensor({16, 16}, 2, {false, false}), PastaError);
    EXPECT_THROW(GHiCooTensor({16, 16}, 2, {true}), PastaError);
}

TEST(GHiCooTensor, MixedCoordinateReconstruction)
{
    GHiCooTensor t({16, 16, 16}, 2, {true, false, true});
    BIndex block[3] = {2, 0, 1};  // mode 1 slot ignored
    t.append_block(block);
    EIndex elems[3] = {3, 0, 2};
    Index raw[3] = {0, 13, 0};
    t.append_entry(elems, raw, 9.0f);
    EXPECT_EQ(t.coordinate(0, 0, 0), 11u);  // 2*4+3
    EXPECT_EQ(t.coordinate(1, 0, 0), 13u);  // raw
    EXPECT_EQ(t.coordinate(2, 0, 0), 6u);   // 1*4+2
    t.validate();
}

TEST(GHiCooTensor, StorageReflectsPerModeChoice)
{
    GHiCooTensor t({16, 16, 16}, 2, {true, false, true});
    BIndex block[3] = {0, 0, 0};
    t.append_block(block);
    EIndex elems[3] = {0, 0, 0};
    Index raw[3] = {0, 5, 0};
    t.append_entry(elems, raw, 1.0f);
    // 1 block x (2 compressed x 4B + 8B bptr) + 1 nnz x (2x1B + 1x4B + 4B).
    EXPECT_EQ(t.storage_bytes(), (2u * 4 + 8) + (2u + 4 + 4));
}

TEST(SHiCooTensor, AppendAndReconstruct)
{
    SHiCooTensor t({16, 3, 16}, {1}, 2);
    EXPECT_EQ(t.sparse_modes(), (std::vector<Size>{0, 2}));
    EXPECT_EQ(t.stripe_volume(), 3u);
    BIndex block[2] = {1, 2};
    t.append_block(block);
    EIndex elems[2] = {3, 1};
    const Size pos = t.append_entry(elems);
    t.stripe(pos)[2] = 4.0f;
    EXPECT_EQ(t.sparse_coordinate(0, 0, pos), 7u);  // 1*4+3
    EXPECT_EQ(t.sparse_coordinate(1, 0, pos), 9u);  // 2*4+1
    t.validate();
}

TEST(SHiCooTensor, ToScooRoundTripsValues)
{
    SHiCooTensor t({16, 3, 16}, {1}, 2);
    BIndex block[2] = {0, 0};
    t.append_block(block);
    EIndex elems[2] = {1, 2};
    const Size pos = t.append_entry(elems);
    t.stripe(pos)[0] = 1.0f;
    t.stripe(pos)[2] = 3.0f;
    ScooTensor s = t.to_scoo();
    EXPECT_EQ(s.num_sparse(), 1u);
    EXPECT_FLOAT_EQ(s.at({1, 0, 2}), 1.0f);
    EXPECT_FLOAT_EQ(s.at({1, 2, 2}), 3.0f);
}

TEST(DenseMatrix, AccessAndRandomize)
{
    Rng rng(4);
    DenseMatrix m = DenseMatrix::random(5, 7, rng);
    EXPECT_EQ(m.rows(), 5u);
    EXPECT_EQ(m.cols(), 7u);
    bool nonzero = false;
    for (Size r = 0; r < m.rows(); ++r)
        for (Size c = 0; c < m.cols(); ++c)
            nonzero |= (m(r, c) != 0.0f);
    EXPECT_TRUE(nonzero);
    EXPECT_EQ(m.row(2), m.data() + 2 * 7);
    EXPECT_EQ(m.storage_bytes(), 5u * 7 * 4);
}

TEST(DenseMatrix, MaxAbsDiff)
{
    DenseMatrix a(2, 2, 1.0f);
    DenseMatrix b(2, 2, 1.0f);
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
    b(1, 1) = 3.0f;
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
    DenseMatrix c(3, 2, 0.0f);
    EXPECT_THROW(max_abs_diff(a, c), PastaError);
}

TEST(DenseVector, FillAndRandomize)
{
    DenseVector v(10, 2.5f);
    EXPECT_EQ(v.size(), 10u);
    EXPECT_FLOAT_EQ(v[9], 2.5f);
    Rng rng(8);
    v.randomize(rng);
    EXPECT_NE(v[0], v[1]);
}

}  // namespace
}  // namespace pasta
