// Tests for the synthetic tensor generators and the dataset catalog.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "gen/datasets.hpp"
#include "gen/kronecker.hpp"
#include "gen/powerlaw.hpp"

namespace pasta {
namespace {

TEST(Kronecker, ProducesRequestedNnzWithinDims)
{
    KroneckerConfig config;
    config.dims = {100, 80, 60};
    config.nnz = 2000;
    config.seed = 1;
    CooTensor t = generate_kronecker(config);
    EXPECT_EQ(t.nnz(), 2000u);
    EXPECT_EQ(t.dims(), config.dims);
    t.validate();
    EXPECT_TRUE(t.is_sorted_lexicographic());
}

TEST(Kronecker, DeterministicPerSeed)
{
    KroneckerConfig config;
    config.dims = {64, 64, 64};
    config.nnz = 500;
    config.seed = 7;
    CooTensor a = generate_kronecker(config);
    CooTensor b = generate_kronecker(config);
    EXPECT_TRUE(a.same_pattern(b));
    EXPECT_EQ(a.values(), b.values());
    config.seed = 8;
    CooTensor c = generate_kronecker(config);
    EXPECT_FALSE(a.same_pattern(c));
}

TEST(Kronecker, DefaultInitiatorIsNormalizedAndSkewed)
{
    const auto init = default_kronecker_initiator(3, 2);
    ASSERT_EQ(init.size(), 8u);
    double total = 0;
    for (double p : init)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Cell (0,0,0) must be the hottest (fractal skew).
    for (Size c = 1; c < 8; ++c)
        EXPECT_GT(init[0], init[c]);
}

TEST(Kronecker, SkewConcentratesMassNearOrigin)
{
    KroneckerConfig config;
    config.dims = {1024, 1024};
    config.nnz = 4000;
    config.seed = 3;
    CooTensor t = generate_kronecker(config);
    // With the biased initiator, far more non-zeros land in the low half
    // of each mode than the high half.
    Size low = 0;
    for (Size p = 0; p < t.nnz(); ++p)
        low += (t.index(0, p) < 512);
    EXPECT_GT(low, t.nnz() * 6 / 10);
}

TEST(Kronecker, SupportsNonPowerDimsViaStripOff)
{
    KroneckerConfig config;
    config.dims = {100, 37, 53};  // none a power of 2
    config.nnz = 300;
    config.seed = 5;
    CooTensor t = generate_kronecker(config);
    EXPECT_EQ(t.nnz(), 300u);
    t.validate();  // all coordinates inside the requested dims
}

TEST(Kronecker, CustomInitiatorValidated)
{
    KroneckerConfig config;
    config.dims = {16, 16};
    config.nnz = 10;
    config.initiator = {0.5, 0.5};  // wrong size: needs 4
    EXPECT_THROW(generate_kronecker(config), PastaError);
}

TEST(Kronecker, RejectsOverDenseRequest)
{
    KroneckerConfig config;
    config.dims = {4, 4};
    config.nnz = 12;  // > half of 16
    EXPECT_THROW(generate_kronecker(config), PastaError);
}

TEST(PowerLaw, ProducesRequestedShape)
{
    PowerLawConfig config;
    config.dims = {5000, 5000, 64};
    config.nnz = 3000;
    config.uniform_mode = {false, false, true};
    config.seed = 1;
    CooTensor t = generate_powerlaw(config);
    EXPECT_EQ(t.nnz(), 3000u);
    EXPECT_EQ(t.dims(), config.dims);
    t.validate();
}

TEST(PowerLaw, DeterministicPerSeed)
{
    PowerLawConfig config;
    config.dims = {1000, 1000};
    config.nnz = 500;
    config.seed = 9;
    CooTensor a = generate_powerlaw(config);
    CooTensor b = generate_powerlaw(config);
    EXPECT_TRUE(a.same_pattern(b));
}

TEST(PowerLaw, IndexDistributionIsHeavyHeaded)
{
    // Power-law sampling: index 0 must dominate; the top decile of the
    // range must hold a tiny fraction of samples.
    Rng rng(2);
    const Index dim = 10000;
    std::map<Index, int> counts;
    const int samples = 20000;
    Size top_decile = 0;
    for (int i = 0; i < samples; ++i) {
        const Index idx = sample_powerlaw_index(rng, dim, 1.8);
        ASSERT_LT(idx, dim);
        ++counts[idx];
        top_decile += (idx >= dim / 10 * 9);
    }
    EXPECT_GT(counts[0], samples / 10);          // hot head
    EXPECT_LT(top_decile, samples / 100);        // cold tail
}

TEST(PowerLaw, AlphaControlsSkew)
{
    Rng rng1(3);
    Rng rng2(3);
    const Index dim = 10000;
    int head_weak = 0;
    int head_strong = 0;
    for (int i = 0; i < 10000; ++i) {
        head_weak += (sample_powerlaw_index(rng1, dim, 1.3) < 10);
        head_strong += (sample_powerlaw_index(rng2, dim, 2.5) < 10);
    }
    EXPECT_GT(head_strong, head_weak);
}

TEST(PowerLaw, UniformModesCoverTheirRange)
{
    PowerLawConfig config;
    config.dims = {2000, 2000, 16};
    config.nnz = 4000;
    config.uniform_mode = {false, false, true};
    config.seed = 4;
    CooTensor t = generate_powerlaw(config);
    std::vector<int> counts(16, 0);
    for (Size p = 0; p < t.nnz(); ++p)
        ++counts[t.index(2, p)];
    for (int c : counts)
        EXPECT_GT(c, 0) << "uniform mode left a slice empty";
}

TEST(PowerLaw, RejectsBadAlpha)
{
    PowerLawConfig config;
    config.dims = {100, 100};
    config.nnz = 10;
    config.alpha = 1.0;
    EXPECT_THROW(generate_powerlaw(config), PastaError);
}

TEST(Datasets, TablesMatchThePaper)
{
    const auto& real = real_dataset_table();
    const auto& synth = synthetic_dataset_table();
    ASSERT_EQ(real.size(), 15u);
    ASSERT_EQ(synth.size(), 15u);
    // Spot-check a few published rows.
    EXPECT_EQ(real[0].name, "vast");
    EXPECT_EQ(real[0].paper_dims,
              (std::vector<Index>{165'000, 11'000, 2}));
    EXPECT_EQ(real[8].name, "nell1");
    EXPECT_EQ(real[8].order(), 3u);
    EXPECT_EQ(real[14].name, "deli4d");
    EXPECT_EQ(real[14].order(), 4u);
    EXPECT_EQ(synth[0].name, "regS");
    EXPECT_EQ(synth[0].gen, GenKind::kKronecker);
    EXPECT_EQ(synth[3].name, "irrS");
    EXPECT_EQ(synth[3].gen, GenKind::kPowerLaw);
    EXPECT_EQ(synth[14].name, "irr2L4d");
}

TEST(Datasets, ShortModesAreMarkedUniform)
{
    const DatasetSpec& vast = find_dataset("vast");
    EXPECT_FALSE(vast.uniform_mode[0]);
    EXPECT_TRUE(vast.uniform_mode[2]);  // extent 2
    const DatasetSpec& fbm = find_dataset("fb-m");
    EXPECT_TRUE(fbm.uniform_mode[2]);  // extent 166
}

TEST(Datasets, FindByIdAndNameAndUnknownThrows)
{
    EXPECT_EQ(find_dataset("r3").name, "choa");
    EXPECT_EQ(find_dataset("choa").id, "r3");
    EXPECT_EQ(find_dataset("s2").name, "regM");
    EXPECT_THROW(find_dataset("nope"), PastaError);
}

TEST(Datasets, ScaledShapePreservesOrderAndFits)
{
    for (const auto* table :
         {&real_dataset_table(), &synthetic_dataset_table()}) {
        for (const auto& spec : *table) {
            const ScaledShape shape = scaled_shape(spec, 1e-4);
            EXPECT_EQ(shape.dims.size(), spec.order()) << spec.id;
            double capacity = 1.0;
            for (Index d : shape.dims)
                capacity *= static_cast<double>(d);
            EXPECT_GE(capacity, 4.0 * static_cast<double>(shape.nnz))
                << spec.id;
            EXPECT_GE(shape.nnz, 1u);
        }
    }
}

TEST(Datasets, ScaledShapeKeepsModeSkew)
{
    // fb-m: two huge modes, one short mode; the stand-in must keep that.
    const ScaledShape shape = scaled_shape(find_dataset("fb-m"), 1e-4);
    EXPECT_GT(shape.dims[0], 100u * shape.dims[2]);
    EXPECT_EQ(shape.dims[0], shape.dims[1]);
}

TEST(Datasets, SynthesizeIsDeterministic)
{
    const DatasetSpec& spec = find_dataset("irrS");
    CooTensor a = synthesize_dataset(spec, 1e-3);
    CooTensor b = synthesize_dataset(spec, 1e-3);
    EXPECT_TRUE(a.same_pattern(b));
    EXPECT_GT(a.nnz(), 900u);
}

TEST(Datasets, StandardSuiteCoversAllThirty)
{
    const auto suite = standard_suite(2e-5);
    ASSERT_EQ(suite.size(), 30u);
    EXPECT_EQ(suite[0].id, "r1");
    EXPECT_EQ(suite[15].id, "s1");
    for (const auto& entry : suite) {
        EXPECT_GT(entry.tensor.nnz(), 0u) << entry.id;
        entry.tensor.validate();
    }
}

}  // namespace
}  // namespace pasta
