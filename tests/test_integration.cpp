// Cross-module integration tests: full pipelines from generation through
// format conversion, kernels on every format, IO, and tensor-method-style
// iteration (CP-ALS / tensor power method building blocks).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/cost_model.hpp"
#include "analysis/efficiency.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/convert.hpp"
#include "gen/datasets.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "io/tns_io.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/reference.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"
#include "roofline/roofline.hpp"

namespace pasta {
namespace {

TEST(Integration, GeneratedDatasetThroughAllKernelsAndFormats)
{
    // Generate a small catalog tensor and run every kernel in every
    // format, cross-checking results between formats.
    const CooTensor x = synthesize_dataset(find_dataset("irrS"), 2e-4);
    ASSERT_GT(x.nnz(), 100u);
    Rng rng(1);

    // TEW / TS.
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    const CooTensor tew_c = tew_coo(x, y, EwOp::kAdd);
    const HiCooTensor tew_h =
        tew_hicoo(coo_to_hicoo(x, 7), coo_to_hicoo(y, 7), EwOp::kAdd);
    EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(tew_h), tew_c, 1e-3));
    const CooTensor ts_c = ts_coo(x, TsOp::kMul, 1.5f);
    EXPECT_EQ(ts_c.nnz(), x.nnz());

    // TTV / TTM / MTTKRP across all modes and both formats.
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 16, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    for (Size mode = 0; mode < x.order(); ++mode) {
        DenseVector v = DenseVector::random(x.dim(mode), rng);
        const CooTensor ttv_c = ttv_coo(x, v, mode);
        const HiCooTensor ttv_h = ttv_hicoo(x, v, mode);
        EXPECT_TRUE(
            tensors_almost_equal(hicoo_to_coo(ttv_h), ttv_c, 1e-2))
            << "TTV mode " << mode;

        DenseMatrix u = DenseMatrix::random(x.dim(mode), 16, rng);
        const ScooTensor ttm_c = ttm_coo(x, u, mode);
        const SHiCooTensor ttm_h = ttm_hicoo(x, u, mode);
        EXPECT_TRUE(tensors_almost_equal(ttm_h.to_scoo().to_coo(),
                                         ttm_c.to_coo(), 1e-2))
            << "TTM mode " << mode;

        DenseMatrix out_c(x.dim(mode), 16);
        DenseMatrix out_h(x.dim(mode), 16);
        mttkrp_coo(x, factors, mode, out_c);
        mttkrp_hicoo(coo_to_hicoo(x, 7), factors, mode, out_h);
        EXPECT_LT(max_abs_diff(out_c, out_h), 1e-1)
            << "MTTKRP mode " << mode;
    }
}

TEST(Integration, CpuAndGpuPathsAgreeOnCatalogTensor)
{
    const CooTensor x = synthesize_dataset(find_dataset("nips4d"), 1e-4);
    Rng rng(2);
    const Size mode = 1;
    DenseVector v = DenseVector::random(x.dim(mode), rng);

    CooTtvPlan plan = ttv_plan_coo(x, mode);
    CooTensor cpu_out = plan.out_pattern;
    ttv_exec_coo(plan, v, cpu_out);
    CooTensor gpu_out = plan.out_pattern;
    gpusim::ttv_gpu_coo(plan, v, gpu_out);
    EXPECT_TRUE(tensors_almost_equal(cpu_out, gpu_out, 1e-3));
}

TEST(Integration, TnsRoundTripPreservesKernelResults)
{
    // A tensor written to .tns and re-read must give identical MTTKRP.
    Rng rng(3);
    CooTensor x = CooTensor::random({20, 24, 28}, 300, rng);
    std::ostringstream buffer;
    write_tns(buffer, x);
    std::istringstream in(buffer.str());
    CooTensor back = read_tns(in);

    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 8, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out1(x.dim(0), 8);
    DenseMatrix out2(x.dim(0), 8);
    mttkrp_coo_seq(x, factors, 0, out1);
    mttkrp_coo_seq(back, factors, 0, out2);
    EXPECT_LT(max_abs_diff(out1, out2), 1e-2);
}

TEST(Integration, TensorPowerMethodIterationConverges)
{
    // TTV-based tensor power method building block (paper §II-C): for a
    // rank-1 symmetric tensor w * (u o u o u), iterating
    //   v <- normalize( X x_1 v x_2 v )  recovers u.
    const Size n = 12;
    DenseVector u(n);
    Rng rng(4);
    double norm = 0;
    for (Size i = 0; i < n; ++i) {
        u[i] = rng.next_float() + 0.1f;
        norm += static_cast<double>(u[i]) * u[i];
    }
    norm = std::sqrt(norm);
    for (Size i = 0; i < n; ++i)
        u[i] = static_cast<Value>(u[i] / norm);

    CooTensor x({static_cast<Index>(n), static_cast<Index>(n),
                 static_cast<Index>(n)});
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < n; ++j)
            for (Index k = 0; k < n; ++k)
                x.append({i, j, k}, 2.0f * u[i] * u[j] * u[k]);

    DenseVector v = DenseVector::random(n, rng);
    for (int iter = 0; iter < 8; ++iter) {
        CooTensor first = ttv_coo(x, v, 2);   // contract mode 2
        CooTensor second = ttv_coo(first, v, 1);  // then mode 1
        DenseVector next(n, 0);
        for (Size p = 0; p < second.nnz(); ++p)
            next[second.index(0, p)] = second.value(p);
        double next_norm = 0;
        for (Size i = 0; i < n; ++i)
            next_norm += static_cast<double>(next[i]) * next[i];
        next_norm = std::sqrt(next_norm);
        ASSERT_GT(next_norm, 0.0);
        for (Size i = 0; i < n; ++i)
            v[i] = static_cast<Value>(next[i] / next_norm);
    }
    // v must align with u (up to sign).
    double dot = 0;
    for (Size i = 0; i < n; ++i)
        dot += static_cast<double>(v[i]) * u[i];
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-3);
}

TEST(Integration, CpAlsStyleSweepReducesFit)
{
    // One CP-ALS-flavored sweep: MTTKRP per mode followed by a crude
    // normalization must not blow up and must keep matrices finite.
    const CooTensor x = synthesize_dataset(find_dataset("irrS"), 1e-4);
    Rng rng(5);
    const Size rank = 4;
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    for (int sweep = 0; sweep < 2; ++sweep) {
        for (Size mode = 0; mode < x.order(); ++mode) {
            FactorList factors;
            for (const auto& m : mats)
                factors.push_back(&m);
            DenseMatrix update(x.dim(mode), rank);
            mttkrp_coo(x, factors, mode, update);
            // Normalize columns to unit max to keep the sweep stable.
            for (Size r = 0; r < rank; ++r) {
                Value peak = 1e-9f;
                for (Size i = 0; i < update.rows(); ++i)
                    peak = std::max(peak, std::abs(update(i, r)));
                for (Size i = 0; i < update.rows(); ++i)
                    update(i, r) /= peak;
            }
            mats[mode] = update;
        }
    }
    for (const auto& m : mats)
        for (Size i = 0; i < m.rows() * m.cols(); ++i)
            EXPECT_TRUE(std::isfinite(m.data()[i]));
}

TEST(Integration, MeasuredRunFeedsEfficiencyPipeline)
{
    // End-to-end of the bench harness math: time a kernel, build the
    // Table I cost, compute efficiency against a platform.
    const CooTensor x = synthesize_dataset(find_dataset("irrS"), 1e-4);
    const Size mode = 0;
    CooTtvPlan plan = ttv_plan_coo(x, mode);
    CooTensor out = plan.out_pattern;
    DenseVector v(x.dim(mode), 1.0f);
    const RunStats stats =
        timed_runs([&] { ttv_exec_coo(plan, v, out); }, 3, 1);

    TensorStats tstats;
    tstats.order = x.order();
    tstats.nnz = x.nnz();
    tstats.num_fibers = plan.fibers.num_fibers();
    MeasuredRun run;
    run.kernel = Kernel::kTtv;
    run.format = Format::kCoo;
    run.seconds = stats.mean_seconds;
    run.cost = kernel_cost(Kernel::kTtv, Format::kCoo, tstats);
    EXPECT_GT(run_gflops(run), 0.0);
    EXPECT_GT(run_efficiency(run, bluesky()), 0.0);
}

TEST(Integration, StorageOrderingAcrossFormats)
{
    // On a block-clustered tensor: HiCOO < COO storage; on hyper-sparse:
    // the reverse; gHiCOO with the scattered mode uncompressed sits
    // between (the paper's format-choice guidance).
    CooTensor clustered({512, 512, 512});
    for (Index i = 0; i < 10; ++i)
        for (Index j = 0; j < 10; ++j)
            for (Index k = 0; k < 10; ++k)
                clustered.append({i, j, k}, 1.0f);
    EXPECT_LT(coo_to_hicoo(clustered, 7).storage_bytes(),
              clustered.storage_bytes());

    Rng rng(6);
    CooTensor scattered({1u << 20, 1u << 20, 64});
    for (int p = 0; p < 400; ++p)
        scattered.append({rng.next_index(1u << 20),
                          rng.next_index(1u << 20), rng.next_index(64)},
                         1.0f);
    scattered.sort_lexicographic();
    scattered.coalesce();
    const Size coo_b = scattered.storage_bytes();
    const Size hicoo_b = coo_to_hicoo(scattered, 7).storage_bytes();
    EXPECT_GT(hicoo_b, coo_b);
}

}  // namespace
}  // namespace pasta
