// Tests for MTTKRP (COO parallel/sequential and HiCOO) against the dense
// reference.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/reference.hpp"

namespace pasta {
namespace {

struct Problem {
    CooTensor x;
    std::vector<DenseMatrix> mats;

    FactorList factors() const
    {
        FactorList list;
        for (const auto& m : mats)
            list.push_back(&m);
        return list;
    }
};

Problem
make_problem(const std::vector<Index>& dims, Size nnz, Size rank,
             std::uint64_t seed)
{
    Rng rng(seed);
    Problem prob;
    prob.x = CooTensor::random(dims, nnz, rng);
    for (Index d : dims)
        prob.mats.push_back(DenseMatrix::random(d, rank, rng));
    return prob;
}

TEST(MttkrpCoo, HandComputedThirdOrderExample)
{
    // Single non-zero x(1,0,1)=2 with rank-1 factors of all ones except
    // B(0,0)=3, C(1,0)=5: out(1,0) = 2*3*5 = 30.
    CooTensor x({2, 2, 2});
    x.append({1, 0, 1}, 2.0f);
    DenseMatrix a(2, 1, 1.0f);
    DenseMatrix b(2, 1, 1.0f);
    DenseMatrix c(2, 1, 1.0f);
    b(0, 0) = 3.0f;
    c(1, 0) = 5.0f;
    DenseMatrix out(2, 1);
    mttkrp_coo(x, {&a, &b, &c}, 0, out);
    EXPECT_FLOAT_EQ(out(1, 0), 30.0f);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
}

TEST(MttkrpCoo, MatchesDenseReferenceOnAllModes)
{
    Problem prob = make_problem({10, 12, 8}, 200, 5, 1);
    DenseTensor dx = DenseTensor::from_coo(prob.x);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix out(prob.x.dim(mode), 5);
        mttkrp_coo(prob.x, prob.factors(), mode, out);
        DenseMatrix expected = ref_mttkrp(dx, prob.factors(), mode);
        EXPECT_LT(max_abs_diff(out, expected), 1e-3) << "mode " << mode;
    }
}

TEST(MttkrpCoo, SequentialMatchesParallel)
{
    Problem prob = make_problem({16, 16, 16}, 400, 8, 2);
    DenseMatrix par(16, 8);
    DenseMatrix seq(16, 8);
    mttkrp_coo(prob.x, prob.factors(), 1, par);
    mttkrp_coo_seq(prob.x, prob.factors(), 1, seq);
    EXPECT_LT(max_abs_diff(par, seq), 1e-3);
}

TEST(MttkrpHicoo, MatchesCooOnAllModes)
{
    Problem prob = make_problem({32, 32, 32}, 600, 6, 3);
    HiCooTensor hx = coo_to_hicoo(prob.x, 3);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix coo_out(32, 6);
        DenseMatrix hicoo_out(32, 6);
        mttkrp_coo(prob.x, prob.factors(), mode, coo_out);
        mttkrp_hicoo(hx, prob.factors(), mode, hicoo_out);
        EXPECT_LT(max_abs_diff(coo_out, hicoo_out), 1e-3)
            << "mode " << mode;
    }
}

TEST(MttkrpCoo, RejectsBadInputs)
{
    Problem prob = make_problem({8, 8, 8}, 50, 4, 4);
    DenseMatrix out(8, 4);
    EXPECT_THROW(mttkrp_coo(prob.x, prob.factors(), 3, out), PastaError);
    DenseMatrix bad_out(7, 4);
    EXPECT_THROW(mttkrp_coo(prob.x, prob.factors(), 0, bad_out),
                 PastaError);
    FactorList too_few = {&prob.mats[0], &prob.mats[1]};
    EXPECT_THROW(mttkrp_coo(prob.x, too_few, 0, out), PastaError);
    DenseMatrix wrong_rank(8, 3);
    FactorList mixed = {&prob.mats[0], &wrong_rank, &prob.mats[2]};
    EXPECT_THROW(mttkrp_coo(prob.x, mixed, 0, out), PastaError);
}

TEST(MttkrpCoo, AccumulatesDuplicateOutputRows)
{
    // Many non-zeros mapping to the same output row stress the atomic
    // update path.
    CooTensor x({2, 64, 64});
    Rng rng(5);
    for (int i = 0; i < 500; ++i)
        x.append({0, rng.next_index(64), rng.next_index(64)}, 1.0f);
    x.sort_lexicographic();
    x.coalesce();
    DenseMatrix b(64, 4, 1.0f);
    DenseMatrix c(64, 4, 1.0f);
    DenseMatrix a(2, 4, 1.0f);
    DenseMatrix out(2, 4);
    mttkrp_coo(x, {&a, &b, &c}, 0, out);
    // All 500 appended values are 1 and the factors are all-ones, so
    // out(0,r) = 500 (coalesce merges duplicates but preserves the sum).
    for (Size r = 0; r < 4; ++r)
        EXPECT_FLOAT_EQ(out(0, r), 500.0f);
}

TEST(MttkrpCoo, OutputZeroedBetweenRuns)
{
    Problem prob = make_problem({12, 12, 12}, 150, 4, 6);
    DenseMatrix out(12, 4, 123.0f);  // dirty buffer
    mttkrp_coo(prob.x, prob.factors(), 2, out);
    DenseMatrix out2(12, 4);
    mttkrp_coo(prob.x, prob.factors(), 2, out2);
    EXPECT_LT(max_abs_diff(out, out2), 1e-4);
}

TEST(MttkrpCoo, PrivatizedMatchesAtomicVariant)
{
    Problem prob = make_problem({24, 24, 24}, 500, 8, 11);
    DenseMatrix atomic_out(24, 8);
    DenseMatrix priv_out(24, 8);
    for (Size mode = 0; mode < 3; ++mode) {
        mttkrp_coo(prob.x, prob.factors(), mode, atomic_out);
        mttkrp_coo_privatized(prob.x, prob.factors(), mode, priv_out);
        EXPECT_LT(max_abs_diff(atomic_out, priv_out), 1e-3)
            << "mode " << mode;
    }
}

TEST(MttkrpCoo, PrivatizedHandlesSkewedOutputRows)
{
    // All non-zeros hit one output row: the worst case for atomics, the
    // easy case for privatization; results must still agree.
    CooTensor x({2, 32, 32});
    Rng rng(12);
    for (int p = 0; p < 300; ++p)
        x.append({0, rng.next_index(32), rng.next_index(32)}, 0.5f);
    x.sort_lexicographic();
    x.coalesce();
    std::vector<DenseMatrix> mats;
    mats.push_back(DenseMatrix::random(2, 4, rng));
    mats.push_back(DenseMatrix::random(32, 4, rng));
    mats.push_back(DenseMatrix::random(32, 4, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix a(2, 4);
    DenseMatrix b(2, 4);
    mttkrp_coo_seq(x, factors, 0, a);
    mttkrp_coo_privatized(x, factors, 0, b);
    EXPECT_LT(max_abs_diff(a, b), 1e-3);
}

TEST(MttkrpCoo, PickHeuristicRespectsBudgetAndDensity)
{
    // Tiny output + dense stream: privatize.  A replicated buffer that
    // would blow the 64 MiB budget, or a stream far sparser than the
    // output rows, must fall back to atomics.
    EXPECT_EQ(mttkrp_coo_pick(1 << 10, 1 << 20, 16),
              MttkrpVariant::kPrivatized);
    EXPECT_EQ(mttkrp_coo_pick(kMaxIndex, 1 << 20, 64),
              MttkrpVariant::kAtomic);
    // dim >> nnz: the zero+reduce sweep would dominate.
    EXPECT_EQ(mttkrp_coo_pick(1 << 20, 16, 1), MttkrpVariant::kAtomic);
}

TEST(MttkrpHicoo, BlockOwnerScheduleGroupsBlocksByOutputIndex)
{
    Problem prob = make_problem({64, 64, 64}, 800, 4, 21);
    HiCooTensor hx = coo_to_hicoo(prob.x, 3);
    for (Size mode = 0; mode < 3; ++mode) {
        const OwnerSchedule& sched = hx.owner_schedule(mode);
        ASSERT_EQ(sched.blocks.size(), hx.num_blocks());
        ASSERT_GE(sched.group_ptr.size(), 2u);
        EXPECT_EQ(sched.group_ptr.front(), 0u);
        EXPECT_EQ(sched.group_ptr.back(), hx.num_blocks());
        // Within a group every block shares the output block index;
        // across group boundaries the index strictly increases.
        for (Size g = 0; g + 1 < sched.group_ptr.size(); ++g) {
            const BIndex key =
                hx.block_index(mode, sched.blocks[sched.group_ptr[g]]);
            for (Size s = sched.group_ptr[g]; s < sched.group_ptr[g + 1];
                 ++s)
                EXPECT_EQ(hx.block_index(mode, sched.blocks[s]), key);
            if (g > 0) {
                EXPECT_GT(key, hx.block_index(
                                   mode,
                                   sched.blocks[sched.group_ptr[g - 1]]));
            }
        }
    }
}

TEST(MttkrpHicoo, OwnerAndAtomicVariantsAgree)
{
    Problem prob = make_problem({64, 64, 64}, 1000, 8, 22);
    HiCooTensor hx = coo_to_hicoo(prob.x, 3);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix auto_out(64, 8);
        DenseMatrix atomic_out(64, 8);
        mttkrp_hicoo(hx, prob.factors(), mode, auto_out);
        mttkrp_hicoo_atomic(hx, prob.factors(), mode, atomic_out);
        EXPECT_LT(max_abs_diff(auto_out, atomic_out), 1e-3)
            << "mode " << mode;
    }
}

TEST(MttkrpHicoo, SmallBlockSizesStillCorrect)
{
    Problem prob = make_problem({16, 16, 16}, 300, 4, 7);
    for (unsigned bits : {1u, 2u, 4u, 8u}) {
        HiCooTensor hx = coo_to_hicoo(prob.x, bits);
        DenseMatrix out(16, 4);
        mttkrp_hicoo(hx, prob.factors(), 0, out);
        DenseMatrix expected(16, 4);
        mttkrp_coo_seq(prob.x, prob.factors(), 0, expected);
        EXPECT_LT(max_abs_diff(out, expected), 1e-3)
            << "block bits " << bits;
    }
}

// Property sweep across orders, ranks, and modes.
class MttkrpSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MttkrpSweep, AllImplementationsMatchReference)
{
    const auto [order, rank] = GetParam();
    const Index dim = order <= 3 ? 12 : 7;
    Problem prob = make_problem(std::vector<Index>(order, dim), 100, rank,
                                700 + order * 13 + rank);
    DenseTensor dx = DenseTensor::from_coo(prob.x);
    HiCooTensor hx = coo_to_hicoo(prob.x, 2);
    for (Size mode = 0; mode < static_cast<Size>(order); ++mode) {
        DenseMatrix expected = ref_mttkrp(dx, prob.factors(), mode);
        DenseMatrix coo_out(dim, rank);
        mttkrp_coo(prob.x, prob.factors(), mode, coo_out);
        EXPECT_LT(max_abs_diff(coo_out, expected), 1e-3)
            << "COO order " << order << " mode " << mode;
        DenseMatrix h_out(dim, rank);
        mttkrp_hicoo(hx, prob.factors(), mode, h_out);
        EXPECT_LT(max_abs_diff(h_out, expected), 1e-3)
            << "HiCOO order " << order << " mode " << mode;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndRanks, MttkrpSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(1, 4, 16)));

}  // namespace
}  // namespace pasta
