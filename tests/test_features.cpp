// Tests for tensor feature extraction and stand-in fidelity checking.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/features.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/datasets.hpp"
#include "gen/powerlaw.hpp"

namespace pasta {
namespace {

TEST(Features, HandComputedSmallTensor)
{
    CooTensor x({4, 8});
    x.append({0, 0}, 1.0f);
    x.append({0, 1}, 3.0f);
    x.append({2, 5}, 5.0f);
    const TensorFeatures f = extract_features(x, 2);
    EXPECT_EQ(f.order, 2u);
    EXPECT_EQ(f.nnz, 3u);
    EXPECT_NEAR(f.density, 3.0 / 32.0, 1e-12);
    // Mode 0 fibers: rows {0 (2 nnz), 2 (1 nnz)} -> wait: mode-0 fibers
    // fix all coords except mode 0, i.e. one fiber per distinct column.
    EXPECT_EQ(f.modes[0].num_fibers, 3u);  // columns 0, 1, 5
    EXPECT_EQ(f.modes[0].used_indices, 2u);  // rows 0 and 2
    EXPECT_EQ(f.modes[1].num_fibers, 2u);  // rows 0 and 2
    EXPECT_EQ(f.modes[1].max_fiber_nnz, 2u);
    EXPECT_NEAR(f.value_mean, 3.0, 1e-6);
}

TEST(Features, EmptyTensorIsAllZero)
{
    CooTensor x({8, 8});
    const TensorFeatures f = extract_features(x);
    EXPECT_EQ(f.nnz, 0u);
    EXPECT_EQ(f.hicoo_blocks, 0u);
    EXPECT_DOUBLE_EQ(f.value_mean, 0.0);
}

TEST(Features, ReportMentionsKeyNumbers)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({16, 16}, 40, rng);
    const std::string report = features_report(extract_features(x));
    EXPECT_NE(report.find("nnz 40"), std::string::npos);
    EXPECT_NE(report.find("mode 0"), std::string::npos);
    EXPECT_NE(report.find("hicoo"), std::string::npos);
}

TEST(Features, DistanceIsZeroForIdenticalTensors)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({32, 32, 32}, 300, rng);
    const TensorFeatures f = extract_features(x);
    EXPECT_NEAR(features_distance(f, f), 0.0, 1e-12);
}

TEST(Features, DistanceSeparatesRegimes)
{
    // A clustered tensor vs a scattered one must be farther apart than
    // two draws of the same generator.
    Rng rng(3);
    PowerLawConfig config;
    config.dims = {4096, 4096, 64};
    config.nnz = 3000;
    config.uniform_mode = {false, false, true};
    config.seed = 1;
    CooTensor a = generate_powerlaw(config);
    config.seed = 2;
    CooTensor b = generate_powerlaw(config);
    CooTensor scattered({4096, 4096, 64});
    while (scattered.nnz() < 3000)
        scattered.append({rng.next_index(4096), rng.next_index(4096),
                          rng.next_index(64)},
                         1.0f);
    scattered.sort_lexicographic();
    scattered.coalesce();
    const TensorFeatures fa = extract_features(a);
    const TensorFeatures fb = extract_features(b);
    const TensorFeatures fs = extract_features(scattered);
    EXPECT_LT(features_distance(fa, fb), features_distance(fa, fs));
}

TEST(Features, DistanceRejectsOrderMismatch)
{
    CooTensor a({4, 4});
    a.append({0, 0}, 1.0f);
    CooTensor b({4, 4, 4});
    b.append({0, 0, 0}, 1.0f);
    EXPECT_THROW(
        features_distance(extract_features(a), extract_features(b)),
        PastaError);
}

TEST(Features, StandInsPreserveDensityRegime)
{
    // Generated stand-ins must land within one order of magnitude of the
    // paper's density for every catalog entry (checked at small scale).
    for (const char* id : {"nell2", "darpa", "irrS", "regS", "nips4d"}) {
        const DatasetSpec& spec = find_dataset(id);
        const CooTensor t = synthesize_dataset(spec, 1e-4);
        double cap = 1.0;
        for (Index d : t.dims())
            cap *= static_cast<double>(d);
        const double density = static_cast<double>(t.nnz()) / cap;
        double paper_cap = 1.0;
        for (Index d : spec.paper_dims)
            paper_cap *= static_cast<double>(d);
        const double paper_density = spec.paper_nnz / paper_cap;
        EXPECT_LT(std::abs(std::log10(density / paper_density)), 1.5)
            << id;
    }
}

}  // namespace
}  // namespace pasta
