// Failure-injection tests: corrupt each format's internal structure in
// every way validate() guards against and confirm the corruption is
// caught; also exercise kernel precondition violations and IO abuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/csf_tensor.hpp"
#include "io/binary_io.hpp"
#include "io/tns_io.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

CooTensor
healthy()
{
    Rng rng(1);
    return CooTensor::random({32, 32, 32}, 200, rng);
}

TEST(FailureInjection, CooOutOfRangeIndexCaught)
{
    CooTensor x = healthy();
    x.mode_indices(1)[5] = 32;  // == dim, out of range
    EXPECT_THROW(x.validate(), PastaError);
}

TEST(FailureInjection, CooIndexArrayLengthMismatchCaught)
{
    CooTensor x = healthy();
    x.mode_indices(0).pop_back();
    EXPECT_THROW(x.validate(), PastaError);
}

TEST(FailureInjection, HicooCorruptionsCaught)
{
    {
        // Block index beyond the dimension's block range.
        HiCooTensor bad(std::vector<Index>{32, 32, 32}, 3);
        BIndex coords[3] = {10, 0, 0};  // block 10 * 8 = 80 > 32
        bad.append_block(coords);
        EIndex e[3] = {0, 0, 0};
        bad.append_entry(e, 1.0f);
        EXPECT_THROW(bad.validate(), PastaError);
    }
    {
        // Empty block.
        HiCooTensor bad(std::vector<Index>{32, 32, 32}, 3);
        BIndex coords[3] = {0, 0, 0};
        bad.append_block(coords);
        bad.append_block(coords);
        EIndex e[3] = {1, 1, 1};
        bad.append_entry(e, 1.0f);
        EXPECT_THROW(bad.validate(), PastaError);
    }
}

TEST(FailureInjection, CsfCorruptionsCaught)
{
    CsfTensor good = CsfTensor::from_coo(healthy());
    {
        CsfTensor bad = good;
        bad.values().pop_back();  // leaf/value length mismatch
        EXPECT_THROW(bad.validate(), PastaError);
    }
}

TEST(FailureInjection, ScooStripeLengthMismatchCaught)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({8, 4, 8}, 40, rng);
    ScooTensor s = coo_to_scoo(x, 1);
    s.values().pop_back();
    EXPECT_THROW(s.validate(), PastaError);
}

TEST(FailureInjection, KernelShapePreconditionsThrowNotCrash)
{
    CooTensor x = healthy();
    CooTtvPlan plan = ttv_plan_coo(x, 0);
    DenseVector wrong_len(31);
    CooTensor out = plan.out_pattern;
    EXPECT_THROW(ttv_exec_coo(plan, wrong_len, out), PastaError);
    CooTensor wrong_out({31, 31});
    EXPECT_THROW(ttv_exec_coo(plan, DenseVector(32), wrong_out),
                 PastaError);
}

TEST(FailureInjection, TnsGarbageInputsRejected)
{
    const char* cases[] = {
        "1 2 3 abc\n",         // non-numeric value
        "1 2 3\n1 2 3 4 5\n",  // arity drift
        "-1 1 1.0\n",          // negative coordinate
        "1.5 2 3.0\n",         // fractional coordinate
    };
    for (const char* text : cases) {
        std::istringstream in(text);
        EXPECT_THROW(read_tns(in), PastaError) << text;
    }
}

TEST(FailureInjection, TnsNonFiniteValuesRejected)
{
    // A single NaN/Inf silently poisons every reduction downstream, so
    // the reader must refuse it and name the offending line.
    const char* cases[] = {"1 1 nan\n", "1 1 inf\n", "2 3 -inf\n",
                           "1 1 1.0\n2 2 NaN\n"};
    for (const char* text : cases) {
        std::istringstream in(text);
        try {
            read_tns(in);
            FAIL() << "accepted: " << text;
        } catch (const PastaError& e) {
            EXPECT_NE(std::string(e.what()).find("line"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(FailureInjection, TnsIndexOverflowRejected)
{
    // 2^32 does not fit Index (uint32_t); the old reader would silently
    // wrap to coordinate 0.
    {
        std::istringstream in("4294967296 1 1.0\n");
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        // Overflow in a later mode and a later row too.
        std::istringstream in("1 1 1.0\n2 99999999999999 2.0\n");
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        // Largest representable coordinate is fine.
        std::istringstream in("4294967294 1 1.0\n");
        const CooTensor t = read_tns(in);
        EXPECT_EQ(t.nnz(), 1u);
    }
}

TEST(FailureInjection, BinaryBitflipsRejected)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "pasta_failure_injection";
    fs::create_directories(dir);
    const std::string path = (dir / "t.pstb").string();
    write_binary_file(path, healthy());

    // Flip the order field to an implausible value.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);  // magic(4) + version(4)
        const std::uint64_t bogus = 1000;
        f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
    }
    EXPECT_THROW(read_binary_file(path), PastaError);
    fs::remove_all(dir);
}

TEST(FailureInjection, BinaryPayloadChecksumCatchesSilentCorruption)
{
    // A bitflip in the value payload leaves the header plausible; only
    // the trailing FNV-1a checksum can catch it.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "pasta_failure_checksum";
    fs::create_directories(dir);
    const std::string path = (dir / "t.pstb").string();
    write_binary_file(path, healthy());
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        char byte = 0;
        f.seekg(-12, std::ios::end);  // inside values, before checksum
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x01);
        f.seekp(-12, std::ios::end);
        f.write(&byte, 1);
    }
    try {
        read_binary_file(path);
        FAIL() << "bitflipped payload accepted";
    } catch (const PastaError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

TEST(FailureInjection, BinaryTruncationRejected)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "pasta_failure_truncate";
    fs::create_directories(dir);
    const std::string path = (dir / "t.pstb").string();
    write_binary_file(path, healthy());
    const auto size = fs::file_size(path);
    // Chop at several depths: inside the checksum, the payload, and the
    // header itself.
    for (const auto keep :
         {size - 3, size / 2, static_cast<std::uintmax_t>(10)}) {
        fs::resize_file(path, keep);
        EXPECT_THROW(read_binary_file(path), PastaError) << keep;
        fs::remove(path);
        write_binary_file(path, healthy());
    }
    fs::remove_all(dir);
}

TEST(FailureInjection, ConversionOfCorruptTensorDetected)
{
    // A COO tensor with out-of-range indices must be caught by validate
    // before/after conversions (conversions themselves assume valid
    // input, so the contract is: validate() is the gate).
    CooTensor x = healthy();
    x.mode_indices(2)[0] = 1000;
    EXPECT_THROW(x.validate(), PastaError);
}

TEST(FailureInjection, RandomizedHicooRoundTripFuzz)
{
    // Randomized structural fuzz: for many seeds, conversion round trips
    // must be exact (catches latent sort/boundary bugs).
    for (std::uint64_t seed = 100; seed < 130; ++seed) {
        Rng rng(seed);
        const Size order = 2 + seed % 3;
        const Index dim = 16 << (seed % 3);
        CooTensor x = CooTensor::random(
            std::vector<Index>(order, dim), 50 + seed % 200, rng);
        const unsigned bits = 1 + seed % 8;
        HiCooTensor h = coo_to_hicoo(x, bits);
        h.validate();
        EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(h), x))
            << "seed " << seed << " bits " << bits;
    }
}

TEST(FailureInjection, RandomizedCsfRoundTripFuzz)
{
    for (std::uint64_t seed = 200; seed < 225; ++seed) {
        Rng rng(seed);
        const Size order = 2 + seed % 4;
        CooTensor x = CooTensor::random(
            std::vector<Index>(order, 24), 30 + seed % 150, rng);
        CsfTensor c = CsfTensor::from_coo(x);
        c.validate();
        EXPECT_TRUE(tensors_almost_equal(c.to_coo(), x))
            << "seed " << seed;
    }
}

}  // namespace
}  // namespace pasta
