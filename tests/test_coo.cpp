// Unit tests for the COO tensor format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/coo_tensor.hpp"
#include "core/fibers.hpp"

namespace pasta {
namespace {

CooTensor
make_example3()
{
    // The Fig. 1(a)-style example: a small third-order tensor.
    CooTensor t({4, 4, 4});
    t.append({0, 0, 0}, 1.0f);
    t.append({0, 0, 1}, 2.0f);
    t.append({0, 1, 0}, 3.0f);
    t.append({1, 0, 0}, 4.0f);
    t.append({1, 2, 3}, 5.0f);
    t.append({3, 3, 3}, 6.0f);
    return t;
}

TEST(CooTensor, ConstructionAndBasicAccessors)
{
    CooTensor t({3, 5, 7});
    EXPECT_EQ(t.order(), 3u);
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_EQ(t.dim(1), 5u);
    EXPECT_EQ(t.dim(2), 7u);
    EXPECT_EQ(t.nnz(), 0u);
}

TEST(CooTensor, RejectsEmptyAndZeroDims)
{
    EXPECT_THROW(CooTensor(std::vector<Index>{}), PastaError);
    EXPECT_THROW(CooTensor({3, 0, 2}), PastaError);
}

TEST(CooTensor, AppendStoresCoordinatesAndValues)
{
    CooTensor t = make_example3();
    EXPECT_EQ(t.nnz(), 6u);
    EXPECT_EQ(t.index(0, 4), 1u);
    EXPECT_EQ(t.index(1, 4), 2u);
    EXPECT_EQ(t.index(2, 4), 3u);
    EXPECT_FLOAT_EQ(t.value(4), 5.0f);
    EXPECT_EQ(t.coordinate(5), (Coordinate{3, 3, 3}));
}

TEST(CooTensor, AppendRejectsWrongArity)
{
    CooTensor t({4, 4});
    EXPECT_THROW(t.append(Coordinate{1, 2, 3}, 1.0f), PastaError);
}

TEST(CooTensor, StorageMatchesPaperFormula)
{
    // 4(N+1)M bytes for an Nth-order tensor with M non-zeros.
    CooTensor t = make_example3();
    EXPECT_EQ(t.storage_bytes(), 4u * (3 + 1) * 6);
    CooTensor t4({2, 2, 2, 2});
    t4.append({0, 0, 0, 0}, 1.0f);
    EXPECT_EQ(t4.storage_bytes(), 4u * (4 + 1) * 1);
}

TEST(CooTensor, SortLexicographic)
{
    CooTensor t({4, 4});
    t.append({3, 1}, 1.0f);
    t.append({0, 2}, 2.0f);
    t.append({3, 0}, 3.0f);
    t.append({0, 1}, 4.0f);
    EXPECT_FALSE(t.is_sorted_lexicographic());
    t.sort_lexicographic();
    EXPECT_TRUE(t.is_sorted_lexicographic());
    EXPECT_EQ(t.coordinate(0), (Coordinate{0, 1}));
    EXPECT_FLOAT_EQ(t.value(0), 4.0f);
    EXPECT_EQ(t.coordinate(3), (Coordinate{3, 1}));
    EXPECT_FLOAT_EQ(t.value(3), 1.0f);
}

TEST(CooTensor, SortByModeOrderPutsChosenModeFirst)
{
    CooTensor t({4, 4});
    t.append({0, 3}, 1.0f);
    t.append({1, 1}, 2.0f);
    t.append({2, 0}, 3.0f);
    t.sort_by_mode_order({1, 0});
    // Sorted by mode 1 first: (2,0), (1,1), (0,3).
    EXPECT_EQ(t.coordinate(0), (Coordinate{2, 0}));
    EXPECT_EQ(t.coordinate(1), (Coordinate{1, 1}));
    EXPECT_EQ(t.coordinate(2), (Coordinate{0, 3}));
}

TEST(CooTensor, SortFibersLastGroupsFibers)
{
    CooTensor t({3, 3, 4});
    t.append({0, 0, 3}, 1.0f);
    t.append({1, 2, 0}, 2.0f);
    t.append({0, 0, 1}, 3.0f);
    t.append({1, 2, 2}, 4.0f);
    t.sort_fibers_last(2);
    FiberPartition fibers = compute_fibers(t, 2);
    EXPECT_EQ(fibers.num_fibers(), 2u);
    EXPECT_EQ(fibers.fiber_length(0), 2u);
    EXPECT_EQ(fibers.fiber_length(1), 2u);
    // Within the first fiber, mode-2 indices are ascending.
    EXPECT_LT(t.index(2, 0), t.index(2, 1));
}

TEST(CooTensor, CoalesceSumsDuplicates)
{
    CooTensor t({4, 4});
    t.append({1, 1}, 1.0f);
    t.append({0, 0}, 2.0f);
    t.append({1, 1}, 3.0f);
    t.append({0, 0}, 4.0f);
    t.sort_lexicographic();
    t.coalesce();
    EXPECT_EQ(t.nnz(), 2u);
    EXPECT_FLOAT_EQ(t.at({0, 0}), 6.0f);
    EXPECT_FLOAT_EQ(t.at({1, 1}), 4.0f);
}

TEST(CooTensor, CoalesceOnEmptyTensorIsNoop)
{
    CooTensor t({4, 4});
    t.coalesce();
    EXPECT_EQ(t.nnz(), 0u);
}

TEST(CooTensor, AtSumsAllMatches)
{
    CooTensor t = make_example3();
    EXPECT_FLOAT_EQ(t.at({1, 2, 3}), 5.0f);
    EXPECT_FLOAT_EQ(t.at({2, 2, 2}), 0.0f);
}

TEST(CooTensor, SamePatternDetectsEqualityAndDifferences)
{
    CooTensor a = make_example3();
    CooTensor b = make_example3();
    b.values()[2] = 99.0f;  // values may differ
    EXPECT_TRUE(a.same_pattern(b));

    CooTensor c({4, 4, 4});
    c.append({0, 0, 0}, 1.0f);
    EXPECT_FALSE(a.same_pattern(c));  // different nnz

    CooTensor d({4, 4, 5});
    EXPECT_FALSE(a.same_pattern(d));  // different dims
}

TEST(CooTensor, ValidatePassesOnGoodTensor)
{
    CooTensor t = make_example3();
    EXPECT_NO_THROW(t.validate());
}

TEST(CooTensor, RandomGeneratesDistinctSortedCoordinates)
{
    Rng rng(123);
    CooTensor t = CooTensor::random({32, 32, 32}, 500, rng);
    EXPECT_EQ(t.nnz(), 500u);
    EXPECT_TRUE(t.is_sorted_lexicographic());
    t.validate();
}

TEST(CooTensor, RandomIsDeterministicPerSeed)
{
    Rng rng1(77);
    Rng rng2(77);
    CooTensor a = CooTensor::random({16, 16}, 100, rng1);
    CooTensor b = CooTensor::random({16, 16}, 100, rng2);
    EXPECT_TRUE(a.same_pattern(b));
    EXPECT_EQ(a.values(), b.values());
}

TEST(CooTensor, RandomRejectsOverfullRequest)
{
    Rng rng(1);
    EXPECT_THROW(CooTensor::random({2, 2}, 5, rng), PastaError);
}

TEST(CooTensor, SortMortonKeepsAllNonzeros)
{
    Rng rng(5);
    CooTensor t = CooTensor::random({64, 64, 64}, 300, rng);
    CooTensor before = t;
    t.sort_morton(3);
    EXPECT_EQ(t.nnz(), before.nnz());
    // Morton sort is a permutation: lexicographic re-sort restores it.
    t.sort_lexicographic();
    EXPECT_TRUE(t.same_pattern(before));
    EXPECT_EQ(t.values(), before.values());
}

TEST(CooTensor, SortMortonGroupsBlocks)
{
    CooTensor t({16, 16});
    // Two non-zeros in block (0,0) and one in block (1,1), interleaved.
    t.append({0, 0}, 1.0f);
    t.append({9, 9}, 2.0f);
    t.append({1, 1}, 3.0f);
    t.sort_morton(3);  // 8x8 blocks
    // Block (0,0) entries must be contiguous and first.
    EXPECT_LT(t.index(0, 0), 8u);
    EXPECT_LT(t.index(0, 1), 8u);
    EXPECT_GE(t.index(0, 2), 8u);
}

TEST(CooTensor, DescribeMentionsShapeAndNnz)
{
    CooTensor t = make_example3();
    const std::string d = t.describe();
    EXPECT_NE(d.find("4x4x4"), std::string::npos);
    EXPECT_NE(d.find("6 nnz"), std::string::npos);
}

TEST(CooTensor, ResizeNnzExtendsWithZeros)
{
    CooTensor t({4, 4});
    t.append({1, 2}, 5.0f);
    t.resize_nnz(3);
    EXPECT_EQ(t.nnz(), 3u);
    EXPECT_EQ(t.index(0, 2), 0u);
    EXPECT_FLOAT_EQ(t.value(2), 0.0f);
}

TEST(Fibers, SingleFiberWhenAllShareNonModeCoords)
{
    CooTensor t({2, 2, 8});
    for (Index k = 0; k < 8; ++k)
        t.append({1, 1, k}, 1.0f);
    FiberPartition fibers = compute_fibers(t, 2);
    EXPECT_EQ(fibers.num_fibers(), 1u);
    EXPECT_EQ(fibers.max_fiber_length(), 8u);
}

TEST(Fibers, EachNonzeroItsOwnFiberWhenModeConstant)
{
    CooTensor t({8, 8, 2});
    for (Index i = 0; i < 8; ++i)
        t.append({i, i, 0}, 1.0f);
    FiberPartition fibers = compute_fibers(t, 2);
    EXPECT_EQ(fibers.num_fibers(), 8u);
    EXPECT_EQ(fibers.max_fiber_length(), 1u);
}

TEST(Fibers, EmptyTensorHasNoFibers)
{
    CooTensor t({4, 4});
    FiberPartition fibers = compute_fibers(t, 0);
    EXPECT_EQ(fibers.num_fibers(), 0u);
}

TEST(Fibers, RejectsOutOfRangeMode)
{
    CooTensor t({4, 4});
    EXPECT_THROW(compute_fibers(t, 2), PastaError);
}

}  // namespace
}  // namespace pasta
