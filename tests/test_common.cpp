// Unit tests for the common substrate: rng, timer, parallel, morton,
// error handling, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/morton.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace pasta {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversSmallRangeUniformly)
{
    Rng rng(11);
    std::vector<int> counts(8, 0);
    const int samples = 80000;
    for (int i = 0; i < samples; ++i)
        ++counts[rng.next_below(8)];
    for (int c : counts) {
        EXPECT_GT(c, samples / 8 * 0.9);
        EXPECT_LT(c, samples / 8 * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    double lo = 1.0;
    double hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(5);
    const int samples = 100000;
    int hits = 0;
    for (int i = 0; i < samples; ++i)
        hits += rng.next_bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng a(9);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    t.start();
    volatile double x = 0;
    for (int i = 0; i < 1000000; ++i)
        x = x + std::sqrt(static_cast<double>(i));
    EXPECT_GE(t.elapsed_seconds(), 0.0);
}

TEST(Timer, TimedRunsReportsStats)
{
    int calls = 0;
    RunStats stats = timed_runs([&] { ++calls; }, 5, 2);
    EXPECT_EQ(calls, 7);  // 2 warm-ups + 5 timed
    EXPECT_EQ(stats.runs, 5u);
    EXPECT_LE(stats.min_seconds, stats.mean_seconds);
    EXPECT_LE(stats.mean_seconds, stats.max_seconds);
}

TEST(Parallel, ForCoversRangeExactlyOnce)
{
    const Size n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto sched :
         {Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided}) {
        for (auto& h : hits)
            h = 0;
        parallel_for(0, n, sched, [&](Size i) { ++hits[i]; });
        for (Size i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "schedule mismatch at " << i;
    }
}

TEST(Parallel, ForEmptyRangeIsNoop)
{
    bool called = false;
    parallel_for(5, 5, Schedule::kStatic, [&](Size) { called = true; });
    parallel_for(7, 3, Schedule::kStatic, [&](Size) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, RangesPartitionIsDisjointAndComplete)
{
    const Size n = 12345;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits)
        h = 0;
    parallel_for_ranges(0, n, [&](Size first, Size last) {
        EXPECT_LT(first, last);
        for (Size i = first; i < last; ++i)
            ++hits[i];
    });
    for (Size i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, AtomicAddAccumulates)
{
    Value total = 0;
    parallel_for(0, 10000, Schedule::kStatic,
                 [&](Size) { atomic_add(&total, 1.0f); });
    EXPECT_FLOAT_EQ(total, 10000.0f);
}

TEST(Parallel, SumReduction)
{
    const double s =
        parallel_sum(1, 101, [](Size i) { return static_cast<double>(i); });
    EXPECT_DOUBLE_EQ(s, 5050.0);
}

TEST(Parallel, ThreadOverrideRoundTrips)
{
    const int before = num_threads();
    set_num_threads(1);
    EXPECT_EQ(num_threads(), 1);
    set_num_threads(0);
    EXPECT_EQ(num_threads(), before);
}

TEST(Parallel, NestedParallelForDegradesToSerial)
{
    // A parallel_for issued from inside another parallel region must not
    // fan out again (threads² oversubscription); the inner loop still
    // covers its range, just serially.
    std::atomic<int> inner_team_max{1};
    std::atomic<long> covered{0};
    parallel_for(0, 8, Schedule::kStatic, [&](Size) {
        EXPECT_EQ(num_threads(), 1);  // nested: degrade to serial
        std::atomic<int> concurrent{0};
        parallel_for(0, 64, Schedule::kStatic, [&](Size) {
            const int now = concurrent.fetch_add(1) + 1;
            int seen = inner_team_max.load();
            while (now > seen && !inner_team_max.compare_exchange_weak(
                                     seen, now))
                ;
            covered.fetch_add(1);
            concurrent.fetch_sub(1);
        });
    });
    EXPECT_EQ(covered.load(), 8 * 64);
    EXPECT_EQ(inner_team_max.load(), 1)
        << "inner parallel_for must run serially inside an outer region";
}

TEST(Parallel, ThreadBudgetCapsAndRestores)
{
    const int unbudgeted = num_threads();
    {
        ThreadBudgetScope budget(1);
        EXPECT_EQ(thread_budget(), 1);
        EXPECT_EQ(num_threads(), 1);
        {
            ThreadBudgetScope inner(2);  // nests and restores
            EXPECT_EQ(thread_budget(), 2);
        }
        EXPECT_EQ(thread_budget(), 1);
    }
    EXPECT_EQ(thread_budget(), 0);
    EXPECT_EQ(num_threads(), unbudgeted);
    // A budget above the machine width never raises the count.
    ThreadBudgetScope wide(4096);
    EXPECT_EQ(num_threads(), unbudgeted);
}

TEST(Parallel, ThreadBudgetIsPerThread)
{
    ThreadBudgetScope budget(1);
    int other = -1;
    std::thread probe([&] { other = thread_budget(); });
    probe.join();
    EXPECT_EQ(other, 0) << "budget must not leak across threads";
    EXPECT_EQ(thread_budget(), 1);
}

TEST(Morton, OrderOneIsIdentity)
{
    for (Index i : {0u, 1u, 5u, 255u, 1u << 20}) {
        const MortonKey key = morton_encode(&i, 1);
        EXPECT_EQ(key.lo, i);
        EXPECT_EQ(key.hi, 0u);
    }
}

TEST(Morton, InterleavesTwoModes)
{
    // (1, 0) -> bit 0 set; (0, 1) -> bit 1 set; (1, 1) -> bits 0 and 1.
    Index a[2] = {1, 0};
    EXPECT_EQ(morton_encode(a, 2).lo, 0b01u);
    Index b[2] = {0, 1};
    EXPECT_EQ(morton_encode(b, 2).lo, 0b10u);
    Index c[2] = {1, 1};
    EXPECT_EQ(morton_encode(c, 2).lo, 0b11u);
    Index d[2] = {2, 0};
    EXPECT_EQ(morton_encode(d, 2).lo, 0b100u);
}

TEST(Morton, PreservesLocalityOrdering)
{
    // Adjacent coordinates must be closer in Morton order than far ones.
    Index near1[2] = {3, 3};
    Index near2[2] = {3, 4};
    Index far[2] = {1000, 1000};
    const MortonKey k1 = morton_encode(near1, 2);
    const MortonKey k2 = morton_encode(near2, 2);
    const MortonKey kf = morton_encode(far, 2);
    EXPECT_TRUE(k1 < kf);
    EXPECT_TRUE(k2 < kf);
}

TEST(Morton, KeysAreUniquePerCoordinate)
{
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (Index i = 0; i < 16; ++i) {
        for (Index j = 0; j < 16; ++j) {
            for (Index k = 0; k < 16; ++k) {
                Index c[3] = {i, j, k};
                const MortonKey key = morton_encode(c, 3);
                EXPECT_TRUE(seen.insert({key.hi, key.lo}).second);
            }
        }
    }
}

TEST(Morton, HighBitsSpillIntoHiWord)
{
    Index c[4] = {kMaxIndex, kMaxIndex, kMaxIndex, kMaxIndex};
    const MortonKey key = morton_encode(c, 4);
    EXPECT_EQ(key.lo, ~0ULL);
    EXPECT_EQ(key.hi, ~0ULL);
}

TEST(Error, PastaCheckThrows)
{
    EXPECT_THROW([] { PASTA_CHECK(1 == 2); }(), PastaError);
    EXPECT_NO_THROW([] { PASTA_CHECK(1 == 1); }());
}

TEST(Error, PastaCheckMsgIncludesMessage)
{
    try {
        PASTA_CHECK_MSG(false, "mode " << 7 << " bad");
        FAIL() << "expected throw";
    } catch (const PastaError& e) {
        EXPECT_NE(std::string(e.what()).find("mode 7 bad"),
                  std::string::npos);
    }
}

TEST(Log, ThresholdFilters)
{
    const LogLevel old = log_threshold();
    set_log_threshold(LogLevel::kError);
    EXPECT_EQ(log_threshold(), LogLevel::kError);
    PASTA_LOG_INFO << "should be suppressed";
    set_log_threshold(old);
}

TEST(Log, ThresholdIsThreadSafe)
{
    const LogLevel old = log_threshold();
    // Writers flip the threshold while readers evaluate the PASTA_LOG
    // gate; under TSan this is the proof the atomic claim holds.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (int i = 0; i < 2000; ++i)
            set_log_threshold(i % 2 ? LogLevel::kError
                                    : LogLevel::kWarn);
        stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&] {
            while (!stop.load()) {
                const LogLevel level = log_threshold();
                EXPECT_TRUE(level == LogLevel::kError ||
                            level == LogLevel::kWarn || level == old);
                PASTA_LOG_DEBUG << "never printed at these thresholds";
            }
        });
    writer.join();
    for (auto& r : readers)
        r.join();
    set_log_threshold(old);
}

}  // namespace
}  // namespace pasta
