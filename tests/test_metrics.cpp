// Tests for the live metrics registry (src/obs/metrics): log-linear
// histogram bucket math and percentile error bounds, merge algebra,
// registry round-trips, snapshot JSONL serialization/parsing, torn-tail
// tolerance, campaign-style aggregation, and the background exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace pasta::obs::metrics {
namespace {

/// Every test starts and ends with a zeroed registry and no exporter.
class MetricsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        stop_exporter();
        reset_metrics();
    }
    void TearDown() override
    {
        stop_exporter();
        reset_metrics();
    }
};

/// Exact percentile of a sample by full sort: the reference the
/// histogram estimate is checked against.  Same rank convention as
/// HistSample::percentile (sample number max(1, ceil(q*n))).
std::uint64_t
exact_percentile(std::vector<std::uint64_t> values, double q)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const double n = static_cast<double>(values.size());
    std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::clamp<std::size_t>(rank, 1, values.size());
    return values[rank - 1];
}

/// Feeds `values` through a histogram and asserts p50/p95/p99 land
/// within the documented bucket-relative-error bound of the exact
/// sorted-sample percentiles: |est - exact| <= exact/32 + 1 (half a
/// bucket of width <= exact/32, plus one unit of integer slack).
void
expect_percentiles_within_bound(const std::vector<std::uint64_t>& values,
                                const char* what)
{
    Histogram h("bound.check");
    for (const std::uint64_t v : values)
        h.record(v);
    const HistSample sample = h.snapshot();
    ASSERT_EQ(sample.count, values.size()) << what;
    for (const double q : {0.50, 0.95, 0.99}) {
        const double exact =
            static_cast<double>(exact_percentile(values, q));
        const double est = sample.percentile(q);
        const double bound = exact / 32.0 + 1.0;
        EXPECT_NEAR(est, exact, bound)
            << what << " q=" << q << " exact=" << exact;
    }
}

TEST_F(MetricsTest, BucketIndexIsMonotoneAndSelfConsistent)
{
    // Exact range: identity.
    for (std::uint64_t v = 0; v < 64; ++v) {
        EXPECT_EQ(bucket_index(v), v);
        EXPECT_EQ(bucket_lower(v), v);
        EXPECT_EQ(bucket_width(v), 1u);
    }
    // Every value lies inside its own bucket, widths bound the error,
    // and indices never decrease as values grow.
    std::size_t prev_idx = 0;
    for (std::uint64_t v : {64ull, 65ull, 100ull, 1000ull, 4095ull,
                            4096ull, 123456789ull, 1ull << 40,
                            (1ull << 40) + 12345, ~0ull}) {
        const std::size_t idx = bucket_index(v);
        ASSERT_LT(idx, kHistBuckets) << v;
        EXPECT_GE(idx, prev_idx);
        prev_idx = idx;
        const std::uint64_t lo = bucket_lower(idx);
        const std::uint64_t w = bucket_width(idx);
        EXPECT_LE(lo, v);
        EXPECT_LT(v - lo, w) << v;
        EXPECT_LE(w, v / 32 + 1) << v;
    }
    // The full sweep of bucket edges round-trips through the index map.
    for (std::size_t idx = 0; idx < kHistBuckets; ++idx) {
        const std::uint64_t lo = bucket_lower(idx);
        EXPECT_EQ(bucket_index(lo), idx) << idx;
        const std::uint64_t w = bucket_width(idx);
        if (lo + (w - 1) >= lo) {  // skip the final bucket's overflow
            EXPECT_EQ(bucket_index(lo + (w - 1)), idx) << idx;
        }
    }
}

TEST_F(MetricsTest, PercentilesWithinBoundUniform)
{
    Rng rng(1234);
    std::vector<std::uint64_t> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        values.push_back(rng.next_u64() % 1000000);
    expect_percentiles_within_bound(values, "uniform");
}

TEST_F(MetricsTest, PercentilesWithinBoundBimodal)
{
    // Two tight modes far apart: fast cache hits around 40 µs, slow
    // builds around 80 ms — the serving workload's latency shape.
    Rng rng(99);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 9000; ++i)
        values.push_back(30 + rng.next_u64() % 20);
    for (int i = 0; i < 1000; ++i)
        values.push_back(75000 + rng.next_u64() % 10000);
    expect_percentiles_within_bound(values, "bimodal");
}

TEST_F(MetricsTest, PercentilesWithinBoundHeavyTail)
{
    // Pareto-ish tail spanning six orders of magnitude.
    std::mt19937_64 gen(7);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
        const double u = uni(gen);
        values.push_back(static_cast<std::uint64_t>(
            10.0 / std::pow(1.0 - u * 0.999999, 1.2)));
    }
    expect_percentiles_within_bound(values, "heavy-tail");
}

TEST_F(MetricsTest, PercentilesSingleValueAndEmpty)
{
    expect_percentiles_within_bound(
        std::vector<std::uint64_t>(5000, 777), "single-value");
    const HistSample empty;
    EXPECT_EQ(empty.percentile(0.5), 0.0);
    EXPECT_EQ(empty.mean(), 0.0);
}

TEST_F(MetricsTest, SnapshotTracksMomentsExactly)
{
    Histogram h("moments");
    h.record(3);
    h.record(100000);
    h.record(41);
    const HistSample s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 100044u);
    EXPECT_EQ(s.min, 3u);
    EXPECT_EQ(s.max, 100000u);
    EXPECT_DOUBLE_EQ(s.mean(), 100044.0 / 3.0);
}

TEST_F(MetricsTest, MergeIsCommutativeAndAssociative)
{
    Rng rng(2024);
    Histogram ha("a"), hb("b"), hc("c");
    for (int i = 0; i < 3000; ++i)
        ha.record(rng.next_u64() % 1000);
    for (int i = 0; i < 3000; ++i)
        hb.record(1000 + rng.next_u64() % 100000);
    for (int i = 0; i < 100; ++i)
        hc.record(rng.next_u64());
    const HistSample a = ha.snapshot();
    const HistSample b = hb.snapshot();
    const HistSample c = hc.snapshot();

    auto merged = [](const HistSample& x, const HistSample& y) {
        HistSample out = x;
        out.merge_from(y);
        return out;
    };
    auto equal = [](const HistSample& x, const HistSample& y) {
        return x.count == y.count && x.sum == y.sum && x.min == y.min &&
               x.max == y.max && x.buckets == y.buckets;
    };
    EXPECT_TRUE(equal(merged(a, b), merged(b, a)));
    EXPECT_TRUE(
        equal(merged(merged(a, b), c), merged(a, merged(b, c))));
    // Merging an empty sample is the identity.
    EXPECT_TRUE(equal(merged(a, HistSample{}), a));
    EXPECT_TRUE(equal(merged(HistSample{}, a), a));
    // Merged percentiles equal the percentiles of the pooled sample.
    Histogram pooled("pooled");
    Rng rng2(2024);
    for (int i = 0; i < 3000; ++i)
        pooled.record(rng2.next_u64() % 1000);
    for (int i = 0; i < 3000; ++i)
        pooled.record(1000 + rng2.next_u64() % 100000);
    const HistSample p = pooled.snapshot();
    EXPECT_DOUBLE_EQ(merged(a, b).percentile(0.95), p.percentile(0.95));
}

TEST_F(MetricsTest, ConcurrentRecordingLosesNothing)
{
    Histogram h("concurrent");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t * kPerThread + i));
        });
    for (auto& th : threads)
        th.join();
    const HistSample s = h.snapshot();
    EXPECT_EQ(s.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max,
              static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
}

TEST_F(MetricsTest, RegistryRoundTrip)
{
    counter_add("t.jobs", 5);
    counter_add("t.jobs", 7);
    gauge_set("t.level", 3.5);
    gauge_max("t.peak", 10.0);
    gauge_max("t.peak", 4.0);  // lower: must not regress the max
    hist_record("t.lat", 100);
    hist_record("t.lat", 200);

    const MetricsSnapshot snap = snapshot_metrics();
    EXPECT_EQ(snap.counter("t.jobs"), 12u);
    EXPECT_DOUBLE_EQ(snap.gauge("t.level"), 3.5);
    EXPECT_DOUBLE_EQ(snap.gauge("t.peak"), 10.0);
    const HistSample* lat = snap.hist("t.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 2u);
    EXPECT_EQ(lat->sum, 300u);
    // Absent names read as zero/null, never throw.
    EXPECT_EQ(snap.counter("t.absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauge("t.absent"), 0.0);
    EXPECT_EQ(snap.hist("t.absent"), nullptr);

    reset_metrics();
    const MetricsSnapshot cleared = snapshot_metrics();
    EXPECT_EQ(cleared.counter("t.jobs"), 0u);
    const HistSample* lat2 = cleared.hist("t.lat");
    ASSERT_NE(lat2, nullptr);
    EXPECT_EQ(lat2->count, 0u);
}

TEST_F(MetricsTest, JsonRoundTripPreservesEverything)
{
    counter_add("rt.count", 42);
    gauge_set("rt.gauge", 1234.5);
    hist_record("rt.hist", 7);
    hist_record("rt.hist", 7);
    hist_record("rt.hist", 900000);
    MetricsSnapshot snap = snapshot_metrics();
    snap.ts = 1754700000.25;
    snap.seq = 9;
    snap.source = "shard \"x\"\\y";  // exercises string escaping

    const std::string line = snapshot_to_json(snap);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    MetricsSnapshot back;
    ASSERT_TRUE(parse_snapshot_line(line, back));
    EXPECT_DOUBLE_EQ(back.ts, snap.ts);
    EXPECT_EQ(back.seq, 9u);
    EXPECT_EQ(back.source, "shard \"x\"\\y");
    EXPECT_EQ(back.counter("rt.count"), 42u);
    EXPECT_DOUBLE_EQ(back.gauge("rt.gauge"), 1234.5);
    const HistSample* h = back.hist("rt.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 3u);
    EXPECT_EQ(h->sum, 900014u);
    EXPECT_EQ(h->min, 7u);
    EXPECT_EQ(h->max, 900000u);
    const HistSample* orig = snap.hist("rt.hist");
    ASSERT_NE(orig, nullptr);
    EXPECT_EQ(h->buckets, orig->buckets);
}

TEST_F(MetricsTest, ParseRejectsGarbageAndAcceptsUnknownKeys)
{
    MetricsSnapshot out;
    EXPECT_FALSE(parse_snapshot_line("", out));
    EXPECT_FALSE(parse_snapshot_line("not json", out));
    EXPECT_FALSE(parse_snapshot_line("{\"ts\":1.0,\"seq\":", out));
    EXPECT_FALSE(parse_snapshot_line(
        "{\"hists\":{\"h\":{\"buckets\":[[99999,1]]}}}", out));
    // Unknown keys (schema evolution) are skipped, not fatal.
    EXPECT_TRUE(parse_snapshot_line(
        "{\"ts\":2.0,\"seq\":1,\"source\":\"s\",\"future\":{\"a\":[1,2]},"
        "\"counters\":{\"c\":3}}",
        out));
    EXPECT_EQ(out.counter("c"), 3u);
}

TEST_F(MetricsTest, LoadLastSnapshotToleratesTornTail)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "pasta_test_hb.jsonl")
            .string();
    MetricsSnapshot a;
    a.ts = 1.0;
    a.seq = 1;
    a.source = "w";
    a.counters["done"] = 10;
    MetricsSnapshot b = a;
    b.ts = 2.0;
    b.seq = 2;
    b.counters["done"] = 20;
    {
        std::ofstream out(path);
        out << snapshot_to_json(a) << "\n"
            << snapshot_to_json(b) << "\n"
            << "{\"ts\":3.0,\"seq\":3,\"coun";  // SIGKILL mid-write
    }
    MetricsSnapshot last;
    ASSERT_TRUE(load_last_snapshot(path, last));
    EXPECT_EQ(last.seq, 2u);
    EXPECT_EQ(last.counter("done"), 20u);
    std::remove(path.c_str());
    EXPECT_FALSE(load_last_snapshot(path, last));  // gone now
}

TEST_F(MetricsTest, MergeSnapshotsSumsMaxesAndMerges)
{
    MetricsSnapshot a;
    a.ts = 10.0;
    a.seq = 3;
    a.counters["trial.ok"] = 4;
    a.counters["only.a"] = 1;
    a.gauges["mem.peak"] = 100.0;
    a.hists["lat"].count = 2;
    a.hists["lat"].sum = 20;
    a.hists["lat"].min = 5;
    a.hists["lat"].max = 15;
    a.hists["lat"].buckets = {{5, 1}, {15, 1}};
    MetricsSnapshot b;
    b.ts = 12.0;
    b.seq = 2;
    b.counters["trial.ok"] = 6;
    b.gauges["mem.peak"] = 250.0;
    b.hists["lat"].count = 1;
    b.hists["lat"].sum = 9;
    b.hists["lat"].min = 9;
    b.hists["lat"].max = 9;
    b.hists["lat"].buckets = {{9, 1}};

    const MetricsSnapshot m = merge_snapshots({a, b}, "campaign");
    EXPECT_EQ(m.source, "campaign");
    EXPECT_DOUBLE_EQ(m.ts, 12.0);
    EXPECT_EQ(m.seq, 3u);
    EXPECT_EQ(m.counter("trial.ok"), 10u);
    EXPECT_EQ(m.counter("only.a"), 1u);
    EXPECT_DOUBLE_EQ(m.gauge("mem.peak"), 250.0);
    const HistSample* lat = m.hist("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 3u);
    EXPECT_EQ(lat->sum, 29u);
    EXPECT_EQ(lat->min, 5u);
    EXPECT_EQ(lat->max, 15u);
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> want = {
        {5, 1}, {9, 1}, {15, 1}};
    EXPECT_EQ(lat->buckets, want);
}

TEST_F(MetricsTest, ExporterOptionsParse)
{
    EXPECT_FALSE(ExporterOptions{}.armed());
    setenv("PASTA_METRICS", "/tmp/m.jsonl", 1);
    ExporterOptions o = ExporterOptions::from_env();
    EXPECT_EQ(o.path, "/tmp/m.jsonl");
    EXPECT_DOUBLE_EQ(o.interval_s, 1.0);
    setenv("PASTA_METRICS", "/tmp/m.jsonl,250", 1);
    o = ExporterOptions::from_env();
    EXPECT_EQ(o.path, "/tmp/m.jsonl");
    EXPECT_DOUBLE_EQ(o.interval_s, 0.25);
    setenv("PASTA_METRICS", "/tmp/m.jsonl,nope", 1);
    EXPECT_ANY_THROW(ExporterOptions::from_env());
    setenv("PASTA_METRICS", "/tmp/m.jsonl,0", 1);
    EXPECT_ANY_THROW(ExporterOptions::from_env());
    unsetenv("PASTA_METRICS");
    EXPECT_FALSE(ExporterOptions::from_env().armed());
}

TEST_F(MetricsTest, ExporterWritesHeartbeatsAndFinalSnapshot)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "pasta_test_exp.jsonl")
            .string();
    std::remove(path.c_str());
    counter_add("exp.before", 1);
    ExporterOptions opts;
    opts.path = path;
    opts.interval_s = 0.05;
    ASSERT_TRUE(start_exporter(opts, "unit"));
    EXPECT_TRUE(exporter_running());
    counter_add("exp.during", 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop_exporter();
    EXPECT_FALSE(exporter_running());

    // >= immediate snapshot + >=1 periodic + final; all parseable; the
    // final one carries everything recorded before stop.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    MetricsSnapshot snap;
    std::uint64_t prev_seq = 0;
    while (std::getline(in, line)) {
        ++lines;
        ASSERT_TRUE(parse_snapshot_line(line, snap)) << line;
        EXPECT_EQ(snap.source, "unit");
        EXPECT_GT(snap.seq, prev_seq);  // strictly increasing
        prev_seq = snap.seq;
        EXPECT_GT(snap.ts, 0.0);
    }
    EXPECT_GE(lines, 3u);
    EXPECT_EQ(snap.counter("exp.before"), 1u);
    EXPECT_EQ(snap.counter("exp.during"), 2u);
    // The exporter refreshes the governor/obs gauges each tick.
    EXPECT_TRUE(snap.gauges.count("mem.reserved"));
    EXPECT_TRUE(snap.gauges.count("mem.peak"));
    std::remove(path.c_str());
    // Idempotent stop.
    stop_exporter();
}

}  // namespace
}  // namespace pasta::obs::metrics
