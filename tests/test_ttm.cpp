// Tests for TTM (COO and HiCOO paths) against the dense reference.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/reference.hpp"
#include "kernels/ttm.hpp"

namespace pasta {
namespace {

TEST(TtmCoo, HandComputedExample)
{
    // x(0,0,0)=1, x(0,0,1)=2; u = [[1,10],[2,20]] (2 rows, rank 2).
    CooTensor x({2, 2, 2});
    x.append({0, 0, 0}, 1.0f);
    x.append({0, 0, 1}, 2.0f);
    DenseMatrix u(2, 2);
    u(0, 0) = 1.0f;
    u(0, 1) = 10.0f;
    u(1, 0) = 2.0f;
    u(1, 1) = 20.0f;
    ScooTensor y = ttm_coo(x, u, 2);
    // y(0,0,r) = 1*u(0,r) + 2*u(1,r) = [5, 50].
    EXPECT_EQ(y.num_sparse(), 1u);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 5.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1}), 50.0f);
}

TEST(TtmCoo, OutputDimsReplaceModeWithRank)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({8, 9, 10}, 100, rng);
    DenseMatrix u = DenseMatrix::random(9, 5, rng);
    ScooTensor y = ttm_coo(x, u, 1);
    EXPECT_EQ(y.dims(), (std::vector<Index>{8, 5, 10}));
    EXPECT_EQ(y.dense_modes(), (std::vector<Size>{1}));
    EXPECT_EQ(y.stripe_volume(), 5u);
}

TEST(TtmCoo, MatchesDenseReferenceOnAllModes)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({10, 12, 8}, 200, rng);
    DenseTensor dx = DenseTensor::from_coo(x);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix u = DenseMatrix::random(x.dim(mode), 6, rng);
        ScooTensor y = ttm_coo(x, u, mode);
        DenseTensor expected = ref_ttm(dx, u, mode);
        EXPECT_TRUE(
            tensors_almost_equal(y.to_coo(), expected.to_coo(), 1e-3))
            << "mode " << mode;
    }
}

TEST(TtmCoo, StripeCountEqualsFiberCount)
{
    Rng rng(3);
    CooTensor x = CooTensor::random({16, 16, 16}, 300, rng);
    CooTtmPlan plan = ttm_plan_coo(x, 0, 4);
    EXPECT_EQ(plan.out_pattern.num_sparse(), plan.fibers.num_fibers());
}

TEST(TtmCoo, RejectsBadInputs)
{
    Rng rng(4);
    CooTensor x = CooTensor::random({8, 8, 8}, 50, rng);
    EXPECT_THROW(ttm_plan_coo(x, 5, 4), PastaError);
    EXPECT_THROW(ttm_plan_coo(x, 0, 0), PastaError);
    CooTtmPlan plan = ttm_plan_coo(x, 1, 4);
    DenseMatrix wrong_rows = DenseMatrix::random(7, 4, rng);
    ScooTensor out = plan.out_pattern;
    EXPECT_THROW(ttm_exec_coo(plan, wrong_rows, out), PastaError);
    DenseMatrix wrong_rank = DenseMatrix::random(8, 5, rng);
    EXPECT_THROW(ttm_exec_coo(plan, wrong_rank, out), PastaError);
}

TEST(TtmHicoo, MatchesCooResult)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({32, 32, 32}, 500, rng);
    for (Size mode = 0; mode < 3; ++mode) {
        DenseMatrix u = DenseMatrix::random(32, 8, rng);
        ScooTensor coo_result = ttm_coo(x, u, mode);
        SHiCooTensor hicoo_result = ttm_hicoo(x, u, mode, 3);
        EXPECT_TRUE(tensors_almost_equal(hicoo_result.to_scoo().to_coo(),
                                         coo_result.to_coo(), 1e-3))
            << "mode " << mode;
    }
}

TEST(TtmHicoo, OutputBlocksMirrorInputBlocks)
{
    Rng rng(6);
    CooTensor x = CooTensor::random({64, 64, 64}, 400, rng);
    HicooTtmPlan plan = ttm_plan_hicoo(x, 1, 16, 3);
    EXPECT_EQ(plan.out_pattern.num_blocks(), plan.input.num_blocks());
    plan.out_pattern.validate();
}

TEST(TtmCoo, RepeatedExecOverwritesOutput)
{
    // exec must be idempotent on a reused output buffer (bench loops).
    Rng rng(7);
    CooTensor x = CooTensor::random({16, 16, 16}, 200, rng);
    DenseMatrix u = DenseMatrix::random(16, 4, rng);
    CooTtmPlan plan = ttm_plan_coo(x, 2, 4);
    ScooTensor out = plan.out_pattern;
    ttm_exec_coo(plan, u, out);
    std::vector<Value> first = out.values();
    ttm_exec_coo(plan, u, out);
    EXPECT_EQ(out.values(), first);
}

TEST(TtmCoo, LowRankDefaultSixteen)
{
    // The paper uses R=16 to reflect low-rank tensor methods (§V-A2).
    Rng rng(8);
    CooTensor x = CooTensor::random({20, 20, 20}, 150, rng);
    DenseMatrix u = DenseMatrix::random(20, 16, rng);
    ScooTensor y = ttm_coo(x, u, 0);
    EXPECT_EQ(y.stripe_volume(), 16u);
    DenseTensor expected = ref_ttm(DenseTensor::from_coo(x), u, 0);
    EXPECT_TRUE(tensors_almost_equal(y.to_coo(), expected.to_coo(), 1e-3));
}

// Property sweep across orders, modes, ranks, and block sizes.
class TtmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TtmSweep, BothFormatsMatchReference)
{
    const auto [order, rank, block_bits] = GetParam();
    const Index dim = order <= 3 ? 12 : 7;
    Rng rng(500 + order * 31 + rank * 7 + block_bits);
    CooTensor x =
        CooTensor::random(std::vector<Index>(order, dim), 90, rng);
    DenseTensor dx = DenseTensor::from_coo(x);
    for (Size mode = 0; mode < static_cast<Size>(order); ++mode) {
        DenseMatrix u = DenseMatrix::random(dim, rank, rng);
        DenseTensor expected = ref_ttm(dx, u, mode);
        ScooTensor y = ttm_coo(x, u, mode);
        EXPECT_TRUE(
            tensors_almost_equal(y.to_coo(), expected.to_coo(), 1e-3))
            << "COO order " << order << " mode " << mode;
        SHiCooTensor yh = ttm_hicoo(x, u, mode, block_bits);
        EXPECT_TRUE(tensors_almost_equal(yh.to_scoo().to_coo(),
                                         expected.to_coo(), 1e-3))
            << "HiCOO order " << order << " mode " << mode;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersRanksBlocks, TtmSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 4, 16),
                       ::testing::Values(2, 3)));

}  // namespace
}  // namespace pasta
