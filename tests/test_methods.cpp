// Tests for the complete tensor methods: CP-ALS, Tucker-HOOI, and the
// tensor power method, plus the small linear algebra they rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/ttm.hpp"
#include "methods/cpd.hpp"
#include "methods/linalg.hpp"
#include "methods/power_method.hpp"
#include "methods/tucker.hpp"

namespace pasta {
namespace {

TEST(Linalg, GramMatrixMatchesHandComputation)
{
    DenseMatrix a(3, 2);
    a(0, 0) = 1;
    a(1, 0) = 2;
    a(2, 0) = 3;
    a(0, 1) = 4;
    a(1, 1) = 5;
    a(2, 1) = 6;
    const auto g = gram_matrix(a);
    EXPECT_DOUBLE_EQ(g[0], 14.0);   // 1+4+9
    EXPECT_DOUBLE_EQ(g[1], 32.0);   // 4+10+18
    EXPECT_DOUBLE_EQ(g[2], 32.0);
    EXPECT_DOUBLE_EQ(g[3], 77.0);   // 16+25+36
}

TEST(Linalg, InvertRecoversIdentity)
{
    std::vector<double> a = {4, 7, 2, 6};
    const auto inv = invert_matrix(a, 2);
    // a * inv = I.
    for (Size i = 0; i < 2; ++i) {
        for (Size j = 0; j < 2; ++j) {
            double acc = 0;
            for (Size k = 0; k < 2; ++k)
                acc += a[i * 2 + k] * inv[k * 2 + j];
            EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-9);
        }
    }
}

TEST(Linalg, InvertSurvivesNearSingularViaRidge)
{
    std::vector<double> singular = {1, 1, 1, 1};
    EXPECT_NO_THROW(invert_matrix(singular, 2));
}

TEST(Linalg, OrthonormalizeProducesOrthonormalColumns)
{
    Rng rng(1);
    DenseMatrix a = DenseMatrix::random(20, 5, rng);
    orthonormalize_columns(a);
    for (Size c1 = 0; c1 < 5; ++c1) {
        for (Size c2 = 0; c2 <= c1; ++c2) {
            double dot = 0;
            for (Size i = 0; i < 20; ++i)
                dot += static_cast<double>(a(i, c1)) * a(i, c2);
            EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-4);
        }
    }
}

TEST(Linalg, NormalizeColumnsReturnsNorms)
{
    DenseMatrix a(2, 2);
    a(0, 0) = 3;
    a(1, 0) = 4;
    a(0, 1) = 0;
    a(1, 1) = 2;
    const auto norms = normalize_columns(a);
    EXPECT_NEAR(norms[0], 5.0, 1e-6);
    EXPECT_NEAR(norms[1], 2.0, 1e-6);
    EXPECT_NEAR(a(0, 0), 0.6, 1e-6);
    EXPECT_NEAR(a(1, 1), 1.0, 1e-6);
}

/// Builds a random rank-r CP tensor (sparse representation of a dense
/// low-rank object restricted to sampled coordinates is NOT low rank, so
/// we materialize all coordinates of a small cube).
CooTensor
planted_cp_tensor(Size n, Size rank, Rng& rng,
                  std::vector<DenseMatrix>* planted = nullptr)
{
    std::vector<DenseMatrix> mats;
    for (int m = 0; m < 3; ++m)
        mats.push_back(
            DenseMatrix::random(n, rank, rng));
    CooTensor x({static_cast<Index>(n), static_cast<Index>(n),
                 static_cast<Index>(n)});
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < n; ++j)
            for (Index k = 0; k < n; ++k) {
                double v = 0;
                for (Size r = 0; r < rank; ++r)
                    v += static_cast<double>(mats[0](i, r)) *
                         mats[1](j, r) * mats[2](k, r);
                x.append({i, j, k}, static_cast<Value>(v));
            }
    if (planted)
        *planted = std::move(mats);
    return x;
}

TEST(CpAls, RecoversPlantedLowRankTensor)
{
    Rng rng(2);
    CooTensor x = planted_cp_tensor(10, 3, rng);
    CpdOptions options;
    options.rank = 3;
    options.max_sweeps = 60;
    options.tolerance = 1e-9;
    const CpdResult result = cp_als(x, options);
    EXPECT_GT(result.fit, 0.98) << "sweeps " << result.sweeps;
}

TEST(CpAls, FitImprovesAndStaysStable)
{
    Rng rng(3);
    CooTensor x = planted_cp_tensor(8, 2, rng);
    CpdOptions options;
    options.rank = 4;
    options.max_sweeps = 15;
    options.tolerance = 0;  // run all sweeps
    const CpdResult result = cp_als(x, options);
    ASSERT_GE(result.fit_history.size(), 3u);
    // ALS is monotone in exact arithmetic; in single precision the fit
    // may jitter at the 1e-3 level once converged, but must never take a
    // real step backwards and must end at least as good as it started.
    for (Size s = 2; s < result.fit_history.size(); ++s)
        EXPECT_GE(result.fit_history[s], result.fit_history[s - 1] - 1e-3)
            << "sweep " << s;
    EXPECT_GE(result.fit_history.back(), result.fit_history.front() - 1e-3);
}

TEST(CpAls, HicooBackendMatchesCoo)
{
    Rng rng(4);
    CooTensor x = planted_cp_tensor(8, 2, rng);
    CpdOptions coo_options;
    coo_options.rank = 2;
    coo_options.max_sweeps = 10;
    coo_options.seed = 9;
    CpdOptions hicoo_options = coo_options;
    hicoo_options.mttkrp_format = Format::kHicoo;
    const CpdResult a = cp_als(x, coo_options);
    const CpdResult b = cp_als(x, hicoo_options);
    EXPECT_NEAR(a.fit, b.fit, 1e-3);
}

TEST(CpAls, ModelEvaluatesCloseToData)
{
    Rng rng(5);
    CooTensor x = planted_cp_tensor(6, 2, rng);
    CpdOptions options;
    options.rank = 2;
    options.max_sweeps = 60;
    options.tolerance = 1e-10;
    const CpdResult model = cp_als(x, options);
    ASSERT_GT(model.fit, 0.95);
    double worst = 0;
    for (Size p = 0; p < x.nnz(); ++p)
        worst = std::max(worst,
                         std::abs(cpd_value_at(model, x.coordinate(p)) -
                                  static_cast<double>(x.value(p))));
    EXPECT_LT(worst, 0.25);
}

TEST(CpAls, RejectsBadInputs)
{
    CooTensor empty({4, 4});
    EXPECT_THROW(cp_als(empty), PastaError);
    CooTensor x({4, 4});
    x.append({0, 0}, 1.0f);
    CpdOptions options;
    options.rank = 0;
    EXPECT_THROW(cp_als(x, options), PastaError);
}

TEST(TtmChain, ProjectsEveryModeExceptSkipped)
{
    Rng rng(6);
    CooTensor x = CooTensor::random({8, 10, 12}, 120, rng);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 3, rng));
    CooTensor all = ttm_chain(x, mats);
    EXPECT_EQ(all.dims(), (std::vector<Index>{3, 3, 3}));
    CooTensor skip1 = ttm_chain(x, mats, 1);
    EXPECT_EQ(skip1.dims(), (std::vector<Index>{3, 10, 3}));
}

TEST(TtmChain, OrderOfContractionsDoesNotChangeResult)
{
    // ttm_chain orders by ascending rank internally; compare against a
    // manual fixed-order chain.
    Rng rng(7);
    CooTensor x = CooTensor::random({6, 7, 8}, 80, rng);
    std::vector<DenseMatrix> mats;
    mats.push_back(DenseMatrix::random(6, 5, rng));
    mats.push_back(DenseMatrix::random(7, 2, rng));
    mats.push_back(DenseMatrix::random(8, 3, rng));
    CooTensor chained = ttm_chain(x, mats);
    CooTensor manual = x;
    for (Size m = 0; m < 3; ++m)
        manual = ttm_coo(manual, mats[m], m).to_coo();
    EXPECT_TRUE(tensors_almost_equal(chained, manual, 1e-2));
}

TEST(TuckerHooi, CoreNormNonDecreasingAndBounded)
{
    Rng rng(8);
    CooTensor x = CooTensor::random({12, 12, 12}, 200, rng);
    TuckerOptions options;
    options.rank = 3;
    options.max_passes = 4;
    options.tolerance = 0;
    const TuckerResult result = tucker_hooi(x, options);
    const double norm_x = std::sqrt(frobenius_norm_squared(x));
    for (Size p = 1; p < result.core_norm_history.size(); ++p)
        EXPECT_GE(result.core_norm_history[p],
                  result.core_norm_history[p - 1] - 1e-3);
    // Orthonormal projections cannot increase the norm.
    EXPECT_LE(result.core_norm, norm_x + 1e-3);
}

TEST(TuckerHooi, ExactlyRecoversLowMultirankTensor)
{
    // A tensor that *is* rank (2,2,2) must be captured exactly:
    // |core| = |X|.
    Rng rng(9);
    std::vector<DenseMatrix> mats;
    for (int m = 0; m < 3; ++m) {
        mats.push_back(DenseMatrix::random(9, 2, rng));
        orthonormalize_columns(mats.back());
    }
    // X = G x1 U1 x2 U2 x3 U3 with a random 2x2x2 core.
    CooTensor core({2, 2, 2});
    for (Index a = 0; a < 2; ++a)
        for (Index b = 0; b < 2; ++b)
            for (Index c = 0; c < 2; ++c)
                core.append({a, b, c}, rng.next_float() + 0.5f);
    CooTensor x({9, 9, 9});
    for (Index i = 0; i < 9; ++i)
        for (Index j = 0; j < 9; ++j)
            for (Index k = 0; k < 9; ++k) {
                double v = 0;
                for (Size p = 0; p < core.nnz(); ++p)
                    v += static_cast<double>(core.value(p)) *
                         mats[0](i, core.index(0, p)) *
                         mats[1](j, core.index(1, p)) *
                         mats[2](k, core.index(2, p));
                if (std::abs(v) > 1e-8)
                    x.append({i, j, k}, static_cast<Value>(v));
            }
    TuckerOptions options;
    options.rank = 2;
    options.max_passes = 6;
    options.power_iterations = 20;
    const TuckerResult result = tucker_hooi(x, options);
    const double norm_x = std::sqrt(frobenius_norm_squared(x));
    EXPECT_NEAR(result.core_norm, norm_x, 0.02 * norm_x);
}

TEST(PowerMethod, RecoversOrthogonalComponents)
{
    const Size n = 16;
    Rng rng(10);
    std::vector<DenseVector> comps;
    for (int c = 0; c < 2; ++c) {
        DenseVector u = DenseVector::random(n, rng);
        for (const auto& prev : comps) {
            double dot = 0;
            for (Size i = 0; i < n; ++i)
                dot += static_cast<double>(u[i]) * prev[i];
            for (Size i = 0; i < n; ++i)
                u[i] -= static_cast<Value>(dot) * prev[i];
        }
        double norm = 0;
        for (Size i = 0; i < n; ++i)
            norm += static_cast<double>(u[i]) * u[i];
        norm = std::sqrt(norm);
        for (Size i = 0; i < n; ++i)
            u[i] = static_cast<Value>(u[i] / norm);
        comps.push_back(u);
    }
    const double weights[2] = {3.0, 1.5};
    CooTensor x({n, n, n});
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < n; ++j)
            for (Index k = 0; k < n; ++k) {
                double v = 0;
                for (int c = 0; c < 2; ++c)
                    v += weights[c] * comps[c][i] * comps[c][j] *
                         comps[c][k];
                if (std::abs(v) > 1e-8)
                    x.append({i, j, k}, static_cast<Value>(v));
            }
    PowerMethodOptions options;
    options.num_components = 2;
    options.iterations = 40;
    const auto found = tensor_power_method(x, options);
    ASSERT_EQ(found.size(), 2u);
    EXPECT_NEAR(found[0].weight, 3.0, 0.05);
    EXPECT_NEAR(found[1].weight, 1.5, 0.05);
    // Recovered directions align with planted ones (up to sign).
    double dot0 = 0;
    for (Size i = 0; i < n; ++i)
        dot0 += static_cast<double>(found[0].vector[i]) * comps[0][i];
    EXPECT_NEAR(std::abs(dot0), 1.0, 1e-2);
}

TEST(PowerMethod, RejectsNonCubicalOrWrongOrder)
{
    CooTensor rect({4, 5, 4});
    rect.append({0, 0, 0}, 1.0f);
    EXPECT_THROW(tensor_power_method(rect), PastaError);
    CooTensor order4({4, 4, 4, 4});
    order4.append({0, 0, 0, 0}, 1.0f);
    EXPECT_THROW(tensor_power_method(order4), PastaError);
}

}  // namespace
}  // namespace pasta
