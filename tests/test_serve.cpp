// Tests for the multi-tenant serving engine (src/serve): work-stealing
// deque, plan cache (hit/miss/eviction/ref-count/single-flight),
// executor determinism, scheduler accounting, chaos isolation, OOM
// retry lane, and strict PASTA_SERVE_* env validation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "common/rng.hpp"
#include "harness/fault.hpp"
#include "serve/deque.hpp"
#include "serve/executor.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"

namespace pasta::serve {
namespace {

CooTensor
small_tensor(std::uint64_t seed = 5, Size nnz = 400)
{
    Rng rng(seed);
    return CooTensor::random({16, 12, 10}, nnz, rng);
}

std::shared_ptr<ServeJob>
make_job(std::shared_ptr<const CooTensor> tensor, std::uint64_t id,
         ServeKernel kernel = ServeKernel::kTtv,
         ServeFormat format = ServeFormat::kCoo, Size mode = 0)
{
    auto job = std::make_shared<ServeJob>();
    job->id = id;
    job->tensor = std::move(tensor);
    job->kernel = kernel;
    job->format = format;
    job->mode = mode;
    job->operand_seed = 1000 + id;
    return job;
}

TEST(ServeOptions, EnvStrictValidation)
{
    ::setenv("PASTA_SERVE_WORKERS", "banana", 1);
    EXPECT_THROW(ServeOptions::from_env(), PastaError);
    ::setenv("PASTA_SERVE_WORKERS", "-3", 1);
    EXPECT_THROW(ServeOptions::from_env(), PastaError);
    ::unsetenv("PASTA_SERVE_WORKERS");

    ::setenv("PASTA_SERVE_CACHE_BYTES", "12Q", 1);
    EXPECT_THROW(ServeOptions::from_env(), PastaError);
    ::unsetenv("PASTA_SERVE_CACHE_BYTES");

    ::setenv("PASTA_SERVE_QUEUE", "0", 1);
    EXPECT_THROW(ServeOptions::from_env(), PastaError);
    ::unsetenv("PASTA_SERVE_QUEUE");
}

TEST(ServeOptions, EnvParsesValidValues)
{
    ::setenv("PASTA_SERVE_WORKERS", "3", 1);
    ::setenv("PASTA_SERVE_QUEUE", "128", 1);
    ::setenv("PASTA_SERVE_CACHE_BYTES", "2M", 1);
    ::setenv("PASTA_SERVE_JOB_THREADS", "2", 1);
    const ServeOptions options = ServeOptions::from_env();
    EXPECT_EQ(options.workers, 3);
    EXPECT_EQ(options.queue_bound, 128u);
    EXPECT_EQ(options.cache_bytes, 2ULL << 20);
    EXPECT_EQ(options.job_threads, 2);
    ::unsetenv("PASTA_SERVE_WORKERS");
    ::unsetenv("PASTA_SERVE_QUEUE");
    ::unsetenv("PASTA_SERVE_CACHE_BYTES");
    ::unsetenv("PASTA_SERVE_JOB_THREADS");
}

TEST(StealDeque, OwnerLifoThiefFifo)
{
    StealDeque<long> deque(64);
    for (long i = 0; i < 10; ++i)
        EXPECT_TRUE(deque.push_bottom(i));
    long item = -1;
    EXPECT_TRUE(deque.pop_bottom(item));
    EXPECT_EQ(item, 9);  // owner pops newest
    EXPECT_TRUE(deque.steal_top(item));
    EXPECT_EQ(item, 0);  // thief takes oldest
    EXPECT_TRUE(deque.steal_top(item));
    EXPECT_EQ(item, 1);
    // Drain the rest through the owner.
    int drained = 0;
    while (deque.pop_bottom(item))
        ++drained;
    EXPECT_EQ(drained, 7);
    EXPECT_FALSE(deque.pop_bottom(item));
    EXPECT_FALSE(deque.steal_top(item));
}

TEST(StealDeque, RejectsPushWhenFull)
{
    StealDeque<long> deque(64);  // rounds to capacity 64
    EXPECT_EQ(deque.capacity(), 64u);
    for (long i = 0; i < 64; ++i)
        EXPECT_TRUE(deque.push_bottom(i));
    EXPECT_FALSE(deque.push_bottom(64));
    long item;
    EXPECT_TRUE(deque.steal_top(item));
    EXPECT_TRUE(deque.push_bottom(64));  // space again
}

TEST(StealDeque, ConcurrentStealsConsumeEachItemOnce)
{
    constexpr long kItems = 20000;
    StealDeque<long> deque(32768);
    std::vector<std::atomic<int>> seen(kItems);
    for (auto& s : seen)
        s.store(0);
    std::atomic<bool> done{false};
    std::atomic<long> consumed{0};

    auto consume = [&](long item) {
        seen[static_cast<std::size_t>(item)].fetch_add(1);
        consumed.fetch_add(1);
    };
    std::vector<std::thread> thieves;
    for (int t = 0; t < 3; ++t)
        thieves.emplace_back([&] {
            long item;
            while (!done.load() || consumed.load() < kItems) {
                if (deque.steal_top(item))
                    consume(item);
                else
                    std::this_thread::yield();
            }
        });
    // Owner: push everything, popping a few along the way.
    long item;
    for (long i = 0; i < kItems; ++i) {
        while (!deque.push_bottom(i))
            if (deque.pop_bottom(item))
                consume(item);
        if (i % 7 == 0 && deque.pop_bottom(item))
            consume(item);
    }
    while (deque.pop_bottom(item))
        consume(item);
    done.store(true);
    for (auto& t : thieves)
        t.join();

    EXPECT_EQ(consumed.load(), kItems);
    for (long i = 0; i < kItems; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
            << "item " << i;
}

TEST(PlanCacheTest, FingerprintMatchesContentOnly)
{
    const CooTensor a = small_tensor(5);
    const CooTensor b = small_tensor(5);
    CooTensor c = small_tensor(5);
    EXPECT_EQ(tensor_fingerprint(a), tensor_fingerprint(b));
    c.values()[0] += 1.0;
    EXPECT_NE(tensor_fingerprint(a), tensor_fingerprint(c));
    const CooTensor d = small_tensor(6);
    EXPECT_NE(tensor_fingerprint(a), tensor_fingerprint(d));
}

TEST(PlanCacheTest, HitReturnsSamePlan)
{
    const CooTensor x = small_tensor();
    PlanCache cache(8ULL << 20, 1);
    auto builder = [&] {
        return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo, 0, 7);
    };
    const std::string key = plan_key(tensor_fingerprint(x),
                                     ServeKernel::kTtv, ServeFormat::kCoo,
                                     0, 16, 7);
    bool hit = true;
    auto p1 = cache.get_or_build(key, builder, &hit);
    EXPECT_FALSE(hit);
    auto p2 = cache.get_or_build(key, builder, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCacheTest, LruEvictionUnderBytePressure)
{
    const CooTensor x = small_tensor();
    auto bytes_of = [&](Size mode) {
        return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo, mode, 7)
            ->bytes;
    };
    const std::uint64_t one = bytes_of(0);
    ASSERT_GT(one, 0u);
    // Room for two plans, not three (single shard: deterministic LRU).
    PlanCache cache(one * 5 / 2, 1);
    const std::uint64_t fp = tensor_fingerprint(x);
    auto get = [&](Size mode) {
        return cache.get_or_build(
            plan_key(fp, ServeKernel::kTtv, ServeFormat::kCoo, mode, 16,
                     7),
            [&] {
                return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo,
                                  mode, 7);
            });
    };
    get(0);
    get(1);
    get(2);  // evicts mode 0 (LRU)
    PlanCache::Stats stats = cache.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.resident_bytes, cache.byte_budget());
    bool hit = true;
    cache.get_or_build(
        plan_key(fp, ServeKernel::kTtv, ServeFormat::kCoo, 0, 16, 7),
        [&] {
            return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo, 0,
                              7);
        },
        &hit);
    EXPECT_FALSE(hit);  // mode 0 was evicted
}

TEST(PlanCacheTest, EvictedPlanStaysAliveAndAccountedWhileReferenced)
{
    auto& governor = membudget::MemGovernor::instance();
    const CooTensor x = small_tensor();
    const std::uint64_t base = governor.reserved();
    PlanCache cache(8ULL << 20, 1);
    std::shared_ptr<const Plan> held = cache.get_or_build(
        plan_key(tensor_fingerprint(x), ServeKernel::kTtv,
                 ServeFormat::kCoo, 0, 16, 7),
        [&] {
            return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo, 0,
                              7);
        });
    const std::uint64_t bytes = held->bytes;
    ASSERT_GT(bytes, 0u);
    EXPECT_EQ(governor.reserved(), base + bytes);

    cache.trim(0);  // evict everything; `held` keeps the last reference
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(governor.reserved(), base + bytes)
        << "reservation must outlive eviction while the plan is in use";
    EXPECT_NO_THROW(held->ttv_coo->out_pattern.nnz());

    held.reset();  // last reference: deleter returns the bytes
    EXPECT_EQ(governor.reserved(), base);
}

TEST(PlanCacheTest, ConcurrentMissesBuildOnce)
{
    const CooTensor x = small_tensor();
    PlanCache cache(8ULL << 20);
    const std::string key = plan_key(tensor_fingerprint(x),
                                     ServeKernel::kTtv, ServeFormat::kCoo,
                                     0, 16, 7);
    std::atomic<int> builds{0};
    auto builder = [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return build_plan(x, ServeKernel::kTtv, ServeFormat::kCoo, 0, 7);
    };
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const Plan>> got(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back(
            [&, t] { got[t] = cache.get_or_build(key, builder); });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1) << "single-flight build per key";
    for (const auto& p : got) {
        ASSERT_TRUE(p);
        EXPECT_EQ(p.get(), got[0].get());
    }
}

TEST(ExecutorTest, CachedResultsAreBitIdenticalToUncached)
{
    auto tensor = std::make_shared<const CooTensor>(small_tensor());
    const std::vector<std::pair<ServeKernel, ServeFormat>> combos = {
        {ServeKernel::kTtv, ServeFormat::kCoo},
        {ServeKernel::kTtv, ServeFormat::kHicoo},
        {ServeKernel::kMttkrp, ServeFormat::kCoo},
        {ServeKernel::kMttkrp, ServeFormat::kHicoo},
    };
    ServeOptions cached_options;  // default cache on, job_threads 1
    ServeOptions uncached_options;
    uncached_options.cache_bytes = 0;
    Executor cached(cached_options);
    Executor uncached(uncached_options);
    std::uint64_t id = 0;
    for (const auto& [kernel, format] : combos) {
        auto j1 = make_job(tensor, id, kernel, format, 1);
        auto j2 = make_job(tensor, id, kernel, format, 1);
        auto j3 = make_job(tensor, id, kernel, format, 1);
        const ExecResult cold = cached.execute(*j1);   // build + cache
        const ExecResult warm = cached.execute(*j2);   // cache hit
        const ExecResult plain = uncached.execute(*j3);
        EXPECT_NE(cold.checksum, 0u);
        EXPECT_EQ(cold.checksum, warm.checksum)
            << serve_kernel_name(kernel) << "/"
            << serve_format_name(format);
        EXPECT_EQ(cold.checksum, plain.checksum)
            << serve_kernel_name(kernel) << "/"
            << serve_format_name(format);
        if (kernel != ServeKernel::kMttkrp || format != ServeFormat::kCoo)
            EXPECT_TRUE(warm.cache_hit);
        ++id;
    }
}

TEST(SchedulerTest, RunsEveryJobExactlyOnce)
{
    auto tensor = std::make_shared<const CooTensor>(small_tensor());
    ServeOptions options;
    options.workers = 4;
    Executor executor(options);
    Scheduler scheduler(options, executor);
    constexpr std::uint64_t kJobs = 300;
    std::vector<std::shared_ptr<ServeJob>> jobs;
    for (std::uint64_t i = 0; i < kJobs; ++i) {
        auto job = make_job(
            tensor, i,
            i % 2 ? ServeKernel::kMttkrp : ServeKernel::kTtv,
            i % 3 ? ServeFormat::kHicoo : ServeFormat::kCoo, i % 3);
        ASSERT_TRUE(scheduler.submit(job));
        jobs.push_back(std::move(job));
    }
    scheduler.drain();
    const Scheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, kJobs);
    EXPECT_EQ(stats.done, kJobs);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.shed, 0u);
    for (const auto& job : jobs) {
        EXPECT_EQ(job->current_state(), JobState::kDone);
        EXPECT_EQ(job->attempts, 1);
        EXPECT_NE(job->result_checksum, 0u);
        EXPECT_GE(job->done_ns, job->start_ns);
        EXPECT_GE(job->start_ns, job->submit_ns);
    }
}

TEST(SchedulerTest, InjectedKernelFaultsFailOnlyTheirJobs)
{
    auto& injector = harness::FaultInjector::instance();
    injector.configure(harness::parse_fault_spec("kernel.run:throw:0.5"),
                       7);
    auto tensor = std::make_shared<const CooTensor>(small_tensor());
    ServeOptions options;
    options.workers = 4;
    Executor executor(options);
    Scheduler scheduler(options, executor);
    constexpr std::uint64_t kJobs = 200;
    std::vector<std::shared_ptr<ServeJob>> jobs;
    for (std::uint64_t i = 0; i < kJobs; ++i) {
        auto job = make_job(tensor, i);
        ASSERT_TRUE(scheduler.submit(job));
        jobs.push_back(std::move(job));
    }
    scheduler.drain();
    Scheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.done + stats.failed, kJobs) << "no job lost";
    EXPECT_GT(stats.failed, 0u);
    EXPECT_GT(stats.done, 0u);
    for (const auto& job : jobs) {
        ASSERT_TRUE(job->terminal());
        if (job->current_state() == JobState::kFailed)
            EXPECT_FALSE(job->error.empty());
    }
    injector.clear();

    // The workers survived the faults: a clean batch completes fully.
    for (std::uint64_t i = 0; i < 50; ++i) {
        auto job = make_job(tensor, kJobs + i);
        ASSERT_TRUE(scheduler.submit(job));
    }
    scheduler.drain();
    stats = scheduler.stats();
    EXPECT_EQ(stats.done + stats.failed, kJobs + 50);
    EXPECT_EQ(stats.done, kJobs + 50 - stats.failed);
}

TEST(SchedulerTest, AdmissionControlShedsBeyondQueueBound)
{
    auto& injector = harness::FaultInjector::instance();
    // First job hangs ~0.4 s so the single worker stays busy while the
    // queue fills.
    harness::FaultSpec spec;
    harness::FaultRule rule;
    rule.point = "kernel.run";
    rule.action = harness::FaultAction::kHang;
    rule.at = 1;
    rule.hang_seconds = 0.4;
    spec.rules.push_back(rule);
    injector.configure(spec, 1);

    auto tensor = std::make_shared<const CooTensor>(small_tensor());
    ServeOptions options;
    options.workers = 1;
    options.queue_bound = 1;
    Executor executor(options);
    Scheduler scheduler(options, executor);
    std::vector<bool> accepted;
    accepted.push_back(scheduler.submit(make_job(tensor, 0)));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (std::uint64_t i = 1; i < 6; ++i)
        accepted.push_back(scheduler.submit(make_job(tensor, i)));
    scheduler.drain();
    injector.clear();

    const Scheduler::Stats stats = scheduler.stats();
    EXPECT_GT(stats.shed, 0u) << "overload must shed";
    std::uint64_t taken = 0;
    for (const bool a : accepted)
        taken += a;
    EXPECT_EQ(stats.submitted, taken);
    EXPECT_EQ(stats.done + stats.failed, taken) << "accepted == terminal";
}

TEST(SchedulerTest, OomRetryLaneDegradesAndSucceeds)
{
    auto& governor = membudget::MemGovernor::instance();
    ASSERT_EQ(governor.budget(), 0u) << "test assumes no armed budget";
    auto tensor = std::make_shared<const CooTensor>(small_tensor());

    // Measure (tracking works with no budget armed): the build peak of
    // job B's plan and the resident bytes of job A's.
    governor.reset_peak();
    const std::uint64_t base = governor.reserved();
    std::uint64_t peak_b = 0;
    {
        auto pb = build_plan(*tensor, ServeKernel::kTtv, ServeFormat::kCoo,
                             1, 7);
        peak_b = governor.peak() - base;
    }
    std::uint64_t bytes_a = 0;
    {
        bytes_a = build_plan(*tensor, ServeKernel::kTtv,
                             ServeFormat::kCoo, 0, 7)
                      ->bytes;
    }
    ASSERT_GT(bytes_a, 0u);
    ASSERT_GE(peak_b, bytes_a / 2);

    // Budget admits one cached plan OR one build — not both at once:
    // job B OOMs while A sits in the cache, then succeeds once the
    // retry lane empties the cache.
    governor.configure(base + peak_b + bytes_a / 2);

    ServeOptions options;
    options.workers = 1;
    Executor executor(options);
    Scheduler scheduler(options, executor);
    auto job_a = make_job(tensor, 0, ServeKernel::kTtv, ServeFormat::kCoo,
                          0);
    ASSERT_TRUE(scheduler.submit(job_a));
    scheduler.drain();
    ASSERT_EQ(job_a->current_state(), JobState::kDone);

    auto job_b = make_job(tensor, 1, ServeKernel::kTtv, ServeFormat::kCoo,
                          1);
    ASSERT_TRUE(scheduler.submit(job_b));
    scheduler.drain();
    governor.configure(0);

    EXPECT_EQ(job_b->current_state(), JobState::kDone)
        << "retry lane should succeed after trimming the cache: "
        << job_b->error;
    EXPECT_TRUE(job_b->degraded);
    EXPECT_EQ(job_b->attempts, 2);
    EXPECT_EQ(scheduler.stats().oom_retries, 1u);
    EXPECT_NE(job_b->result_checksum, 0u);
}

}  // namespace
}  // namespace pasta::serve
