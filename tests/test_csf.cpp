// Tests for the CSF format and its kernels (MTTKRP, TTV).
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/csf_tensor.hpp"
#include "kernels/csf_kernels.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/reference.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

CooTensor
small_example()
{
    // Two root fibers sharing prefixes: (0,0,0),(0,0,2),(0,1,1),(2,1,1).
    CooTensor t({3, 2, 3});
    t.append({0, 0, 0}, 1.0f);
    t.append({0, 0, 2}, 2.0f);
    t.append({0, 1, 1}, 3.0f);
    t.append({2, 1, 1}, 4.0f);
    return t;
}

TEST(Csf, StructureOfHandExample)
{
    CsfTensor c = CsfTensor::from_coo(small_example());
    c.validate();
    EXPECT_EQ(c.nnz(), 4u);
    // Roots: i = {0, 2}.
    ASSERT_EQ(c.level_size(0), 2u);
    EXPECT_EQ(c.level(0).idx[0], 0u);
    EXPECT_EQ(c.level(0).idx[1], 2u);
    // Level 1: under i=0 -> j={0,1}; under i=2 -> j={1}.
    ASSERT_EQ(c.level_size(1), 3u);
    EXPECT_EQ(c.level(0).ptr[0], 0u);
    EXPECT_EQ(c.level(0).ptr[1], 2u);
    EXPECT_EQ(c.level(0).ptr[2], 3u);
    // Leaves: 4.
    ASSERT_EQ(c.level_size(2), 4u);
    EXPECT_EQ(c.level(1).ptr[0], 0u);
    EXPECT_EQ(c.level(1).ptr[1], 2u);
    EXPECT_EQ(c.level(1).ptr[2], 3u);
    EXPECT_EQ(c.level(1).ptr[3], 4u);
}

TEST(Csf, RoundTripsToCoo)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({24, 24, 24}, 300, rng);
    CsfTensor c = CsfTensor::from_coo(x);
    c.validate();
    EXPECT_TRUE(tensors_almost_equal(c.to_coo(), x));
}

TEST(Csf, RoundTripsUnderEveryRootMode)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({12, 16, 20}, 200, rng);
    for (Size root = 0; root < 3; ++root) {
        std::vector<Size> order;
        order.push_back(root);
        for (Size m = 0; m < 3; ++m)
            if (m != root)
                order.push_back(m);
        CsfTensor c = CsfTensor::from_coo(x, order);
        c.validate();
        EXPECT_EQ(c.mode_order()[0], root);
        EXPECT_TRUE(tensors_almost_equal(c.to_coo(), x))
            << "root " << root;
    }
}

TEST(Csf, PrefixCompressionShrinksUpperLevels)
{
    // Many leaves under few roots: level sizes must be strictly
    // decreasing toward the root.
    CooTensor x({4, 8, 64});
    Rng rng(3);
    for (Index i = 0; i < 4; ++i)
        for (Index j = 0; j < 8; ++j)
            for (int k = 0; k < 12; ++k)
                x.append({i, j, rng.next_index(64)}, 1.0f);
    x.sort_lexicographic();
    x.coalesce();
    CsfTensor c = CsfTensor::from_coo(x);
    EXPECT_EQ(c.level_size(0), 4u);
    EXPECT_EQ(c.level_size(1), 32u);
    EXPECT_GT(c.level_size(2), 300u);
    EXPECT_LT(c.storage_bytes(), x.storage_bytes());
}

TEST(Csf, EmptyTensor)
{
    CooTensor x({8, 8});
    CsfTensor c = CsfTensor::from_coo(x);
    EXPECT_EQ(c.nnz(), 0u);
    EXPECT_EQ(c.to_coo().nnz(), 0u);
}

TEST(Csf, RejectsBadModeOrder)
{
    CooTensor x = small_example();
    EXPECT_THROW(CsfTensor::from_coo(x, {0, 1}), PastaError);
    EXPECT_THROW(CsfTensor::from_coo(x, {0, 1, 1}), PastaError);
    EXPECT_THROW(CsfTensor::from_coo(x, {0, 1, 5}), PastaError);
}

TEST(CsfMttkrp, MatchesCooOnAllRootModes)
{
    Rng rng(4);
    CooTensor x = CooTensor::random({16, 20, 12}, 250, rng);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 8, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    for (Size mode = 0; mode < 3; ++mode) {
        std::vector<Size> order;
        order.push_back(mode);
        for (Size m = 0; m < 3; ++m)
            if (m != mode)
                order.push_back(m);
        CsfTensor c = CsfTensor::from_coo(x, order);
        DenseMatrix out(x.dim(mode), 8);
        mttkrp_csf(c, factors, mode, out);
        DenseMatrix expected(x.dim(mode), 8);
        mttkrp_coo_seq(x, factors, mode, expected);
        EXPECT_LT(max_abs_diff(out, expected), 1e-3) << "mode " << mode;
    }
}

TEST(CsfMttkrp, RejectsNonRootMode)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({8, 8, 8}, 60, rng);
    CsfTensor c = CsfTensor::from_coo(x);  // rooted at mode 0
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < 3; ++m)
        mats.push_back(DenseMatrix::random(8, 4, rng));
    FactorList factors = {&mats[0], &mats[1], &mats[2]};
    DenseMatrix out(8, 4);
    EXPECT_THROW(mttkrp_csf(c, factors, 1, out), PastaError);
}

TEST(CsfTtv, MatchesCooTtvOnLeafMode)
{
    Rng rng(6);
    CooTensor x = CooTensor::random({14, 18, 22}, 220, rng);
    for (Size mode = 0; mode < 3; ++mode) {
        std::vector<Size> order;
        for (Size m = 0; m < 3; ++m)
            if (m != mode)
                order.push_back(m);
        order.push_back(mode);  // product mode at the leaves
        CsfTensor c = CsfTensor::from_coo(x, order);
        DenseVector v = DenseVector::random(x.dim(mode), rng);
        CooTensor got = ttv_csf(c, v, mode);
        CooTensor expected = ttv_coo(x, v, mode);
        EXPECT_TRUE(tensors_almost_equal(got, expected, 1e-3))
            << "mode " << mode;
    }
}

TEST(CsfTtv, RejectsNonLeafMode)
{
    Rng rng(7);
    CooTensor x = CooTensor::random({8, 8, 8}, 50, rng);
    CsfTensor c = CsfTensor::from_coo(x);  // leaves hold mode 2
    DenseVector v(8, 1.0f);
    EXPECT_THROW(ttv_csf(c, v, 0), PastaError);
}

// Property sweep: round trips and kernels across orders.
class CsfSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CsfSweep, RoundTripAndRootMttkrp)
{
    const auto [order, nnz] = GetParam();
    const Index dim = order == 1 ? 1024 : (order <= 3 ? 16 : 8);
    Rng rng(900 + order);
    CooTensor x =
        CooTensor::random(std::vector<Index>(order, dim), nnz, rng);
    CsfTensor c = CsfTensor::from_coo(x);
    c.validate();
    EXPECT_TRUE(tensors_almost_equal(c.to_coo(), x));

    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < static_cast<Size>(order); ++m)
        mats.push_back(DenseMatrix::random(dim, 4, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(dim, 4);
    mttkrp_csf(c, factors, 0, out);
    DenseMatrix expected(dim, 4);
    mttkrp_coo_seq(x, factors, 0, expected);
    EXPECT_LT(max_abs_diff(out, expected), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, CsfSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(20, 150)));

}  // namespace
}  // namespace pasta
