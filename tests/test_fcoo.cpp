// Tests for the F-COO format and its TTV kernels (CPU + simulated GPU).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/fcoo_tensor.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "gpusim/timing_model.hpp"
#include "kernels/fcoo_kernels.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

TEST(Fcoo, BuildStructureOnHandExample)
{
    // Fibers along mode 2: (0,0,*) holds 2 nnz; (1,1,*) holds 1.
    CooTensor x({2, 2, 4});
    x.append({0, 0, 1}, 1.0f);
    x.append({0, 0, 3}, 2.0f);
    x.append({1, 1, 0}, 3.0f);
    const FcooTensor f = FcooTensor::build(x, 2);
    f.validate();
    EXPECT_EQ(f.nnz(), 3u);
    EXPECT_EQ(f.num_fibers(), 2u);
    EXPECT_TRUE(f.start_flag(0));
    EXPECT_FALSE(f.start_flag(1));
    EXPECT_TRUE(f.start_flag(2));
    EXPECT_EQ(f.fiber_of(0), 0u);
    EXPECT_EQ(f.fiber_of(1), 0u);
    EXPECT_EQ(f.fiber_of(2), 1u);
    EXPECT_EQ(f.product_index(0), 1u);
    EXPECT_EQ(f.product_index(1), 3u);
}

TEST(Fcoo, StorageSmallerThanCooForHighOrder)
{
    // F-COO keeps one index per non-zero vs N for COO; per-fiber output
    // coordinates are the only extra.
    Rng rng(1);
    CooTensor x = CooTensor::random({16, 16, 16, 16}, 400, rng);
    const FcooTensor f = FcooTensor::build(x, 3);
    EXPECT_LT(f.storage_bytes(), x.storage_bytes());
}

TEST(Fcoo, TtvCpuMatchesCooTtvOnAllModes)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({14, 18, 22}, 250, rng);
    for (Size mode = 0; mode < 3; ++mode) {
        const FcooTensor f = FcooTensor::build(x, mode);
        f.validate();
        DenseVector v = DenseVector::random(x.dim(mode), rng);
        CooTensor got = ttv_fcoo(f, v);
        CooTensor expected = ttv_coo(x, v, mode);
        EXPECT_TRUE(tensors_almost_equal(got, expected, 1e-3))
            << "mode " << mode;
    }
}

TEST(Fcoo, TtvGpuMatchesCpu)
{
    Rng rng(3);
    CooTensor x = CooTensor::random({32, 32, 32}, 600, rng);
    const FcooTensor f = FcooTensor::build(x, 1);
    DenseVector v = DenseVector::random(32, rng);
    CooTensor out = f.out_pattern();
    const gpusim::LaunchProfile prof = gpusim::ttv_gpu_fcoo(f, v, out);
    CooTensor expected = ttv_fcoo(f, v);
    EXPECT_TRUE(tensors_almost_equal(out, expected, 1e-3));
    EXPECT_EQ(prof.atomics, x.nnz());
    EXPECT_EQ(prof.flops, 2 * x.nnz());
}

TEST(Fcoo, GpuBlockTrafficIsUniformUnderSkew)
{
    // One giant fiber + many singletons: Algorithm 2's fiber-per-thread
    // profile is skewed, the F-COO profile is flat.
    CooTensor x({64, 64, 4096});
    Rng rng(4);
    for (Index k = 0; k < 3000; ++k)
        x.append({0, 0, k}, 1.0f);  // one huge fiber
    for (int p = 0; p < 600; ++p)
        x.append({1 + rng.next_index(63), rng.next_index(64),
                  rng.next_index(4096)},
                 1.0f);
    x.sort_lexicographic();
    x.coalesce();
    DenseVector v = DenseVector::random(4096, rng);

    CooTtvPlan coo_plan = ttv_plan_coo(x, 2);
    CooTensor coo_out = coo_plan.out_pattern;
    const gpusim::LaunchProfile coo_prof =
        gpusim::ttv_gpu_coo(coo_plan, v, coo_out);

    const FcooTensor f = FcooTensor::build(x, 2);
    CooTensor fcoo_out = f.out_pattern();
    const gpusim::LaunchProfile fcoo_prof =
        gpusim::ttv_gpu_fcoo(f, v, fcoo_out);

    EXPECT_TRUE(tensors_almost_equal(coo_out, fcoo_out, 1e-2));

    auto spread = [](const std::vector<double>& bytes) {
        double lo = 1e300;
        double hi = 0;
        for (double b : bytes) {
            lo = std::min(lo, b);
            hi = std::max(hi, b);
        }
        return bytes.empty() || lo == 0 ? 0.0 : hi / lo;
    };
    EXPECT_GT(spread(coo_prof.block_bytes), 5.0);
    EXPECT_NEAR(spread(fcoo_prof.block_bytes), 1.0, 1e-9);
}

TEST(Fcoo, RejectsBadInputs)
{
    CooTensor x({8, 8});
    x.append({0, 0}, 1.0f);
    EXPECT_THROW(FcooTensor::build(x, 2), PastaError);
    CooTensor vec({8});
    vec.append({0}, 1.0f);
    EXPECT_THROW(FcooTensor::build(vec, 0), PastaError);
    const FcooTensor f = FcooTensor::build(x, 1);
    DenseVector wrong(7);
    EXPECT_THROW(ttv_fcoo(f, wrong), PastaError);
}

TEST(Fcoo, EmptyTensor)
{
    CooTensor x({8, 8, 8});
    const FcooTensor f = FcooTensor::build(x, 0);
    f.validate();
    EXPECT_EQ(f.nnz(), 0u);
    DenseVector v(8, 1.0f);
    EXPECT_EQ(ttv_fcoo(f, v).nnz(), 0u);
}

}  // namespace
}  // namespace pasta
