// Tests for the robustness harness itself: fault-spec parsing and
// deterministic injection, guarded trial retry/timeout semantics, the
// JSONL run journal (including torn-line tolerance), and corrupt-cache
// regeneration through TensorRegistry.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "harness/fault.hpp"
#include "harness/journal.hpp"
#include "harness/trial.hpp"
#include "io/binary_io.hpp"
#include "io/registry.hpp"

namespace pasta::harness {
namespace {

struct FaultGuard {
    ~FaultGuard() { FaultInjector::instance().clear(); }
};

// ---------------------------------------------------------------------
// Fault spec parsing
// ---------------------------------------------------------------------

TEST(FaultSpecParse, AcceptsFullGrammar)
{
    const FaultSpec spec =
        parse_fault_spec("io.read:throw:0.1,kernel.run:hang@3,alloc:oom");
    ASSERT_EQ(spec.rules.size(), 3u);
    EXPECT_EQ(spec.rules[0].point, "io.read");
    EXPECT_EQ(spec.rules[0].action, FaultAction::kThrow);
    EXPECT_DOUBLE_EQ(spec.rules[0].probability, 0.1);
    EXPECT_EQ(spec.rules[0].at, 0u);
    EXPECT_EQ(spec.rules[1].point, "kernel.run");
    EXPECT_EQ(spec.rules[1].action, FaultAction::kHang);
    EXPECT_EQ(spec.rules[1].at, 3u);
    EXPECT_EQ(spec.rules[2].action, FaultAction::kOom);
    EXPECT_DOUBLE_EQ(spec.rules[2].probability, 1.0);
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    const char* bad[] = {
        "kernel.run",              // missing action
        "kernel.run:explode",      // unknown action
        "warp.drive:throw",        // unknown point
        "kernel.run:throw:1.5",    // probability out of range
        "kernel.run:throw:-0.1",   // negative probability
        "kernel.run:throw:x",      // non-numeric probability
        "kernel.run:throw@0",      // @N is 1-based
        "kernel.run:throw@x",      // non-numeric hit index
        ",",                       // empty rule
        "kernel.run:throw:0.5:9",  // trailing junk
    };
    for (const char* spec : bad)
        EXPECT_THROW(parse_fault_spec(spec), PastaError) << spec;
}

TEST(FaultSpecParse, KnownPointsCoverTheInstrumentedSet)
{
    const auto& points = known_fault_points();
    for (const char* expected : {"io.read", "cache.load", "alloc",
                                 "kernel.run"}) {
        bool found = false;
        for (const auto& p : points)
            found = found || p == expected;
        EXPECT_TRUE(found) << expected;
    }
}

// ---------------------------------------------------------------------
// Injection behaviour
// ---------------------------------------------------------------------

TEST(FaultInjection, DisarmedInjectorIsFree)
{
    FaultInjector::instance().clear();
    EXPECT_FALSE(FaultInjector::instance().enabled());
    fault_point("kernel.run");  // must be a no-op
}

TEST(FaultInjection, AlwaysRuleThrowsAtItsPointOnly)
{
    FaultGuard guard;
    FaultInjector::instance().configure(
        parse_fault_spec("kernel.run:throw"));
    fault_point("io.read");  // other points unaffected
    EXPECT_THROW(fault_point("kernel.run"), PastaError);
}

TEST(FaultInjection, OomRuleThrowsBadAlloc)
{
    FaultGuard guard;
    FaultInjector::instance().configure(parse_fault_spec("alloc:oom"));
    EXPECT_THROW(fault_point("alloc"), std::bad_alloc);
}

TEST(FaultInjection, AtNFiresOnExactlyTheNthHit)
{
    FaultGuard guard;
    FaultInjector::instance().configure(
        parse_fault_spec("io.read:throw@3"));
    fault_point("io.read");
    fault_point("io.read");
    EXPECT_THROW(fault_point("io.read"), PastaError);
    fault_point("io.read");  // 4th hit: silent again
    EXPECT_EQ(FaultInjector::instance().hits("io.read"), 4u);
}

TEST(FaultInjection, ProbabilityStreamIsDeterministicPerSeed)
{
    FaultGuard guard;
    const auto sample = [](std::uint64_t seed) {
        FaultInjector::instance().configure(
            parse_fault_spec("kernel.run:throw:0.5"), seed);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            bool f = false;
            try {
                fault_point("kernel.run");
            } catch (const PastaError&) {
                f = true;
            }
            fired.push_back(f);
        }
        return fired;
    };
    const auto a = sample(42);
    const auto b = sample(42);
    const auto c = sample(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    int fires = 0;
    for (bool f : a)
        fires += f ? 1 : 0;
    EXPECT_GT(fires, 16);  // p=0.5 over 64 draws
    EXPECT_LT(fires, 48);
}

TEST(FaultInjection, HangRuleSleepsForConfiguredSeconds)
{
    FaultGuard guard;
    FaultSpec spec = parse_fault_spec("kernel.run:hang");
    spec.rules[0].hang_seconds = 0.1;
    FaultInjector::instance().configure(spec);
    Timer timer;
    timer.start();
    fault_point("kernel.run");
    EXPECT_GE(timer.elapsed_seconds(), 0.08);
}

// ---------------------------------------------------------------------
// Guarded trials
// ---------------------------------------------------------------------

TEST(GuardedTrial, SuccessfulBodyReportsSeconds)
{
    TrialPolicy policy;
    const TrialResult r =
        run_guarded_trial("ok", [] { return 0.125; }, policy);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.skipped);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_DOUBLE_EQ(r.seconds, 0.125);
}

TEST(GuardedTrial, RetriesThenSucceeds)
{
    TrialPolicy policy;
    policy.max_attempts = 3;
    policy.backoff_initial_s = 0.001;
    int calls = 0;
    const TrialResult r = run_guarded_trial(
        "flaky",
        [&calls]() -> double {
            if (++calls < 3)
                throw PastaError("transient");
            return 1.0;
        },
        policy);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempts, 3);
    EXPECT_EQ(calls, 3);
}

TEST(GuardedTrial, ExhaustedRetriesReportLastError)
{
    TrialPolicy policy;
    policy.max_attempts = 2;
    policy.backoff_initial_s = 0.001;
    int calls = 0;
    const TrialResult r = run_guarded_trial(
        "doomed",
        [&calls]() -> double {
            ++calls;
            throw PastaError("permanent failure");
        },
        policy);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.skipped);
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_EQ(calls, 2);
    EXPECT_NE(r.error.find("permanent failure"), std::string::npos);
}

TEST(GuardedTrial, BadAllocIsCaughtAndRetried)
{
    TrialPolicy policy;
    policy.max_attempts = 2;
    policy.backoff_initial_s = 0.001;
    int calls = 0;
    const TrialResult r = run_guarded_trial(
        "oom",
        [&calls]() -> double {
            if (++calls < 2)
                throw std::bad_alloc();
            return 2.0;
        },
        policy);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempts, 2);
}

TEST(GuardedTrial, WatchdogMarksHungTrialSkipped)
{
    TrialPolicy policy;
    policy.timeout_seconds = 0.2;
    policy.max_attempts = 3;  // timeout must be terminal regardless
    Timer timer;
    timer.start();
    const TrialResult r = run_guarded_trial(
        "hung",
        []() -> double {
            // Sleep well past the watchdog; runs on a detached worker.
            Deadline deadline(2.0);
            while (!deadline.expired())
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
            return 0.0;
        },
        policy);
    const double waited = timer.elapsed_seconds();
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.skipped);
    EXPECT_TRUE(r.timed_out);
    EXPECT_EQ(r.attempts, 1);  // no retry after a timeout
    EXPECT_LT(waited, 1.5);    // returned before the body finished
}

TEST(GuardedTrial, WatchdogPassesFastTrialsThrough)
{
    TrialPolicy policy;
    policy.timeout_seconds = 5.0;
    const TrialResult r =
        run_guarded_trial("fast", [] { return 0.5; }, policy);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.timed_out);
    EXPECT_DOUBLE_EQ(r.seconds, 0.5);
}

// ---------------------------------------------------------------------
// Run journal
// ---------------------------------------------------------------------

TEST(Journal, EntryJsonRoundTrips)
{
    JournalEntry entry;
    entry.tensor_id = "r7";
    entry.kernel = "MTTKRP";
    entry.format = "HiCOO";
    entry.ok = false;
    entry.seconds = 1.25e-4;
    entry.flops = 4.2e6;
    entry.bytes = 8.1e6;
    entry.attempts = 3;
    entry.error = "path \"with\\quotes\"\nand newline";
    JournalEntry parsed;
    ASSERT_TRUE(parse_json_line(to_json_line(entry), parsed));
    EXPECT_EQ(parsed.tensor_id, entry.tensor_id);
    EXPECT_EQ(parsed.kernel, entry.kernel);
    EXPECT_EQ(parsed.format, entry.format);
    EXPECT_EQ(parsed.ok, entry.ok);
    EXPECT_DOUBLE_EQ(parsed.seconds, entry.seconds);
    EXPECT_DOUBLE_EQ(parsed.flops, entry.flops);
    EXPECT_DOUBLE_EQ(parsed.bytes, entry.bytes);
    EXPECT_EQ(parsed.attempts, entry.attempts);
    EXPECT_EQ(parsed.error, entry.error);
}

TEST(Journal, ParseRejectsTornAndMalformedLines)
{
    JournalEntry entry;
    EXPECT_FALSE(parse_json_line("", entry));
    EXPECT_FALSE(parse_json_line("{\"tensor\":\"r1\",\"ker", entry));
    EXPECT_FALSE(parse_json_line("not json at all", entry));
    EXPECT_FALSE(parse_json_line("{\"kernel\":\"TTV\"}", entry));
}

TEST(Journal, DisabledJournalIsInert)
{
    RunJournal journal;
    EXPECT_FALSE(journal.enabled());
    JournalEntry entry;
    entry.tensor_id = "r1";
    entry.kernel = "TEW";
    entry.format = "COO";
    entry.ok = true;
    journal.append(entry);  // no-op, no crash
    EXPECT_FALSE(journal.has_ok("r1", "TEW", "COO"));
}

TEST(Journal, ReplaySurvivesTornTrailingLine)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_journal_unit";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "torn.journal.jsonl").string();
    {
        RunJournal journal(path);
        JournalEntry a{"r1", "TEW", "COO", true, 0.5, 1e6, 2e6, 1, ""};
        JournalEntry b{"r1", "TTV", "COO", false, 0, 0, 0, 3, "boom"};
        journal.append(a);
        journal.append(b);
    }
    {
        // Simulate a kill mid-append: a torn half-line at the end.
        std::ofstream out(path, std::ios::app);
        out << "{\"tensor\":\"r1\",\"kernel\":\"TS\",\"form";
    }
    RunJournal replayed(path);
    EXPECT_EQ(replayed.size(), 2u);
    EXPECT_TRUE(replayed.has_ok("r1", "TEW", "COO"));
    // Failed entries are found but never satisfy the resume filter.
    ASSERT_NE(replayed.find("r1", "TTV", "COO"), nullptr);
    EXPECT_FALSE(replayed.has_ok("r1", "TTV", "COO"));
    EXPECT_EQ(replayed.find("r1", "TS", "COO"), nullptr);
    fs::remove_all(dir);
}

TEST(Journal, LastWriteWinsOnReplay)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pasta_journal_dedup";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "dedup.journal.jsonl").string();
    {
        RunJournal journal(path);
        JournalEntry fail{"r1", "TTM", "HiCOO", false, 0, 0, 0, 3, "x"};
        JournalEntry pass{"r1", "TTM", "HiCOO", true, 0.25, 1e6, 2e6, 1,
                          ""};
        journal.append(fail);
        journal.append(pass);
    }
    RunJournal replayed(path);
    EXPECT_EQ(replayed.size(), 1u);
    EXPECT_TRUE(replayed.has_ok("r1", "TTM", "HiCOO"));
    EXPECT_DOUBLE_EQ(replayed.find("r1", "TTM", "HiCOO")->seconds, 0.25);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Corrupt-cache regeneration
// ---------------------------------------------------------------------

class CacheRegeneration : public ::testing::Test {
  protected:
    void SetUp() override
    {
        namespace fs = std::filesystem;
        dir_ = fs::temp_directory_path() / "pasta_cache_regen";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path cached_file() const
    {
        for (const auto& e : std::filesystem::directory_iterator(dir_))
            if (e.path().extension() == ".pstb")
                return e.path();
        return {};
    }

    std::filesystem::path dir_;
};

TEST_F(CacheRegeneration, BitflippedPayloadIsDetectedAndRegenerated)
{
    TensorRegistry registry(dir_.string(), 1e-4);
    const CooTensor original = registry.load("r1");
    const auto path = cached_file();
    ASSERT_FALSE(path.empty());

    // Flip one byte deep in the payload (past the header) so only the
    // checksum can catch it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-9, std::ios::end);
        char byte = 0;
        f.seekg(-9, std::ios::end);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(-9, std::ios::end);
        f.write(&byte, 1);
    }
    EXPECT_THROW(read_binary_file(path.string()), PastaError);

    // The registry must warn, delete the corrupt entry, and regenerate.
    TensorRegistry fresh(dir_.string(), 1e-4);
    const CooTensor reloaded = fresh.load("r1");
    EXPECT_EQ(reloaded.nnz(), original.nnz());
    EXPECT_EQ(reloaded.order(), original.order());
    // And the rewritten cache entry must now be healthy.
    const CooTensor recached = read_binary_file(cached_file().string());
    EXPECT_EQ(recached.nnz(), original.nnz());
}

TEST_F(CacheRegeneration, TruncatedEntryIsRegenerated)
{
    TensorRegistry registry(dir_.string(), 1e-4);
    const CooTensor original = registry.load("r2");
    const auto path = cached_file();
    ASSERT_FALSE(path.empty());
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    EXPECT_THROW(read_binary_file(path.string()), PastaError);

    TensorRegistry fresh(dir_.string(), 1e-4);
    const CooTensor reloaded = fresh.load("r2");
    EXPECT_EQ(reloaded.nnz(), original.nnz());
}

TEST_F(CacheRegeneration, InjectedCacheLoadFaultFallsBackToSynthesis)
{
    FaultGuard guard;
    TensorRegistry registry(dir_.string(), 1e-4);
    const CooTensor original = registry.load("r3");
    ASSERT_FALSE(cached_file().empty());

    FaultInjector::instance().configure(
        parse_fault_spec("cache.load:throw@1"));
    // First load hits the fault, falls back to synthesis, and re-caches;
    // the result must be identical (synthesis is deterministic).
    const CooTensor reloaded = registry.load("r3");
    EXPECT_EQ(reloaded.nnz(), original.nnz());
    // Second load passes the armed-but-spent rule and reads the cache.
    const CooTensor cached = registry.load("r3");
    EXPECT_EQ(cached.nnz(), original.nnz());
}

}  // namespace
}  // namespace pasta::harness
