// Structural-invariant and differential-oracle validation tests:
// round-trips through every format must validate clean, and each seeded
// corruption class must be flagged with the right issue code.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/rng.hpp"
#include "core/block_math.hpp"
#include "core/convert.hpp"
#include "core/csf_tensor.hpp"
#include "core/fcoo_tensor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"
#include "validate/diff.hpp"
#include "validate/validate.hpp"

namespace pasta {
namespace {

CooTensor
random_tensor(Size order, Index dim, Size nnz, std::uint64_t seed)
{
    Rng rng(seed);
    return CooTensor::random(std::vector<Index>(order, dim), nnz, rng);
}

bool
has_issue(const validate::ValidationReport& report, const char* code)
{
    for (const auto& issue : report.issues)
        if (issue.code == code)
            return true;
    return false;
}

/// Sets the validation mode for one test and restores kOff afterwards.
struct ScopedMode {
    explicit ScopedMode(validate::Mode mode) { validate::set_mode(mode); }
    ~ScopedMode() { validate::set_mode(validate::Mode::kOff); }
};

// ---------------------------------------------------------------- modes

TEST(ValidateMode, EnvParsingAndPredicates)
{
    ::setenv("PASTA_VALIDATE", "convert", 1);
    EXPECT_EQ(validate::mode_from_env(), validate::Mode::kConvert);
    ::setenv("PASTA_VALIDATE", "full", 1);
    EXPECT_EQ(validate::mode_from_env(), validate::Mode::kFull);
    ::setenv("PASTA_VALIDATE", "bogus", 1);
    EXPECT_THROW(validate::mode_from_env(), PastaError);
    ::unsetenv("PASTA_VALIDATE");
    EXPECT_EQ(validate::mode_from_env(), validate::Mode::kOff);

    ScopedMode guard(validate::Mode::kKernel);
    EXPECT_FALSE(validate::convert_checks_enabled());
    EXPECT_TRUE(validate::kernel_checks_enabled());
    EXPECT_FALSE(validate::full_checks_enabled());
    validate::set_mode(validate::Mode::kFull);
    EXPECT_TRUE(validate::convert_checks_enabled());
    EXPECT_TRUE(validate::kernel_checks_enabled());
    EXPECT_TRUE(validate::full_checks_enabled());
}

// --------------------------------------------- round-trips come back ok

TEST(ValidateFormats, EveryFormatValidatesAfterConversion)
{
    CooTensor x = random_tensor(3, 64, 500, 7);
    EXPECT_TRUE(validate::validate(x).ok());

    HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_TRUE(validate::validate(h).ok());
    EXPECT_TRUE(validate::validate(hicoo_to_coo(h)).ok());

    GHiCooTensor g = coo_to_ghicoo(x, {true, false, true}, 3);
    EXPECT_TRUE(validate::validate(g).ok());
    EXPECT_TRUE(validate::validate(ghicoo_to_coo(g)).ok());

    ScooTensor s = coo_to_scoo(x, 2);
    EXPECT_TRUE(validate::validate(s).ok());

    SHiCooTensor sh = scoo_to_shicoo(s, 3);
    EXPECT_TRUE(validate::validate(sh).ok());

    CsfTensor c = CsfTensor::from_coo(x);
    EXPECT_TRUE(validate::validate(c).ok());

    FcooTensor f = FcooTensor::build(x, 1);
    EXPECT_TRUE(validate::validate(f).ok());
}

TEST(ValidateFormats, Order4RoundTripValidates)
{
    CooTensor x = random_tensor(4, 32, 600, 11);
    HiCooTensor h = coo_to_hicoo(x, 2);
    EXPECT_TRUE(validate::validate(h).ok());
    EXPECT_TRUE(validate::validate(CsfTensor::from_coo(x)).ok());
}

// ------------------------------------------------- adversarial COO

TEST(ValidateCoo, FlagsUnsortedEntries)
{
    CooTensor x = random_tensor(3, 32, 100, 13);
    for (Size m = 0; m < 3; ++m)
        std::swap(x.mode_indices(m)[0], x.mode_indices(m)[50]);
    const auto report = validate::validate(x);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "order.sorted"));
    EXPECT_THROW(report.require(), validate::ValidationError);
}

TEST(ValidateCoo, FlagsOutOfRangeIndex)
{
    CooTensor x = random_tensor(3, 32, 50, 17);
    x.mode_indices(1)[10] = 32;  // dims are 32, so max valid index is 31
    const auto report = validate::validate(x);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "index.range"));
}

TEST(ValidateCoo, FlagsDuplicateCoordinates)
{
    CooTensor x({8, 8, 8});
    x.append({1, 2, 3}, 1.0f);
    x.append({1, 2, 3}, 2.0f);
    const auto report = validate::validate(x);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "coordinate.duplicate"));
}

TEST(ValidateCoo, FlagsNonFiniteValue)
{
    CooTensor x = random_tensor(3, 16, 40, 19);
    x.values()[7] = std::numeric_limits<Value>::quiet_NaN();
    const auto report = validate::validate(x);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "value.finite"));
}

TEST(ValidateCoo, ReportCapsRetainedIssuesButCountsAll)
{
    CooTensor x = random_tensor(3, 16, 200, 23);
    for (auto& v : x.values())
        v = std::numeric_limits<Value>::infinity();
    const auto report = validate::validate(x);
    EXPECT_EQ(report.violations, 200u);
    EXPECT_EQ(report.issues.size(), validate::ValidationReport::kMaxIssues);
}

// ------------------------------------------------ duplicate policy

TEST(DuplicatePolicy, SumCoalescesAndRejectThrows)
{
    CooTensor x({8, 8});
    x.append({3, 4}, 1.5f);
    x.append({3, 4}, 2.0f);
    x.append({1, 1}, 1.0f);

    CooTensor summed = x;
    summed.canonicalize(DuplicatePolicy::kSum);
    EXPECT_EQ(summed.count_duplicates(), 0u);
    EXPECT_EQ(summed.nnz(), 2u);
    EXPECT_FLOAT_EQ(summed.at({3, 4}), 3.5f);

    CooTensor rejecting = x;
    EXPECT_THROW(rejecting.canonicalize(DuplicatePolicy::kReject),
                 PastaError);

    CooTensor clean = random_tensor(3, 16, 60, 29);
    EXPECT_EQ(clean.count_duplicates(), 0u);
    clean.canonicalize(DuplicatePolicy::kReject);  // must not throw
}

// ------------------------------------------------ adversarial HiCOO

TEST(ValidateHicoo, FlagsOutOfRangeBlock)
{
    HiCooTensor h({64, 64, 64}, 3);  // 8 blocks per mode
    const BIndex bad_block[3] = {9, 0, 0};
    h.append_block(bad_block);
    const EIndex elem[3] = {0, 0, 0};
    h.append_entry(elem, 1.0f);
    const auto report = validate::validate(h);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "block.range"));
}

TEST(ValidateHicoo, ArraysFlagBrokenBptrAndElementRange)
{
    const std::vector<Index> dims{16, 16};
    // One block with two entries; bptr claims coverage of 3.
    std::vector<std::vector<BIndex>> binds{{0}, {0}};
    std::vector<std::vector<EIndex>> einds{{0, 1}, {0, 1}};
    std::vector<Value> values{1.0f, 2.0f};

    auto report = validate::validate_hicoo_arrays(
        dims, 2, binds, {0, 3}, einds, values);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "bptr.coverage"));

    report = validate::validate_hicoo_arrays(dims, 2, binds, {1, 2},
                                             einds, values);
    EXPECT_TRUE(has_issue(report, "bptr.start"));

    // Element index 7 exceeds the 2^2 block edge.
    einds[0][1] = 7;
    report = validate::validate_hicoo_arrays(dims, 2, binds, {0, 2},
                                             einds, values);
    EXPECT_TRUE(has_issue(report, "element.range"));
}

TEST(ValidateHicoo, ArraysFlagMortonDisorderAndDuplicateBlocks)
{
    const std::vector<Index> dims{64, 64};
    std::vector<std::vector<EIndex>> einds{{0, 0}, {0, 0}};
    std::vector<Value> values{1.0f, 2.0f};

    // Blocks (3,3) then (0,0): Morton keys strictly decrease.
    std::vector<std::vector<BIndex>> binds{{3, 0}, {3, 0}};
    auto report = validate::validate_hicoo_arrays(
        dims, 3, binds, {0, 1, 2}, einds, values);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "block.morton"));

    // The same block twice must be merged, not repeated.
    binds = {{2, 2}, {1, 1}};
    report = validate::validate_hicoo_arrays(dims, 3, binds, {0, 1, 2},
                                             einds, values);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "block.duplicate"));
}

// ------------------------------------------------ adversarial CSF

TEST(ValidateCsf, ArraysFlagBrokenPointersAndDisorder)
{
    // A valid 2-level CSF of a 2-D tensor: roots {0,2}, leaves under it.
    const std::vector<Index> dims{8, 8};
    const std::vector<Size> mode_order{0, 1};
    std::vector<CsfLevel> levels(2);
    levels[0].idx = {0, 2};
    levels[0].ptr = {0, 2, 3};  // each root's leaf range
    levels[1].idx = {1, 3, 0};
    std::vector<Value> values{1.0f, 2.0f, 3.0f};
    EXPECT_TRUE(validate::validate_csf_arrays(dims, mode_order, levels,
                                              values)
                    .ok());

    auto broken = levels;
    broken[0].ptr = {0, 2, 2};  // drops the last leaf
    auto report =
        validate::validate_csf_arrays(dims, mode_order, broken, values);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "ptr.coverage"));

    broken = levels;
    broken[0].idx = {2, 2};  // roots must strictly increase
    report =
        validate::validate_csf_arrays(dims, mode_order, broken, values);
    EXPECT_TRUE(has_issue(report, "order.sorted"));

    broken = levels;
    broken[1].idx[0] = 8;  // beyond dims[1]
    report =
        validate::validate_csf_arrays(dims, mode_order, broken, values);
    EXPECT_TRUE(has_issue(report, "index.range"));
}

// ------------------------------------------------ adversarial F-COO

TEST(ValidateFcoo, ArraysFlagBrokenFlagsAndFiberMap)
{
    CooTensor x({4, 4});
    x.append({0, 1}, 1.0f);
    x.append({0, 3}, 2.0f);
    x.append({2, 2}, 3.0f);
    FcooTensor f = FcooTensor::build(x, 1);
    ASSERT_TRUE(validate::validate(f).ok());

    // Rebuild the arrays by hand (product mode 1: two fibers i=0, i=2).
    const std::vector<Index> dims{4, 4};
    std::vector<Value> values{1.0f, 2.0f, 3.0f};
    std::vector<Index> product{1, 3, 2};
    std::vector<std::uint8_t> flags{1, 0, 1};
    std::vector<Index> fiber_of{0, 0, 1};
    CooTensor pattern({4});
    pattern.append({0}, 0.0f);
    pattern.append({2}, 0.0f);
    EXPECT_TRUE(validate::validate_fcoo_arrays(dims, 1, values, product,
                                               flags, fiber_of, pattern)
                    .ok());

    auto report = validate::validate_fcoo_arrays(
        dims, 1, values, product, {0, 0, 1}, fiber_of, pattern);
    EXPECT_TRUE(has_issue(report, "flags.start"));

    report = validate::validate_fcoo_arrays(dims, 1, values, product,
                                            flags, {0, 1, 1}, pattern);
    EXPECT_TRUE(has_issue(report, "fibers.map"));

    report = validate::validate_fcoo_arrays(dims, 1, values, {1, 3, 4},
                                            flags, fiber_of, pattern);
    EXPECT_TRUE(has_issue(report, "index.range"));
}

// ------------------------------------------------ adversarial sCOO

TEST(ValidateScoo, FlagsCorruptSparseIndex)
{
    CooTensor x = random_tensor(3, 16, 80, 31);
    ScooTensor s = coo_to_scoo(x, 2);
    ASSERT_TRUE(validate::validate(s).ok());
    s.sparse_mode_indices(0)[0] = 16;
    const auto report = validate::validate(s);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_issue(report, "index.range"));
}

// ------------------------------------------------ block arithmetic

TEST(BlockMath, NearMaxDimsDoNotWrap)
{
    const Index huge = kMaxIndex;
    const Size blocks = block_count(huge, 7);
    // A 32-bit (dim + edge - 1) would have wrapped to a tiny count.
    EXPECT_EQ(blocks,
              (static_cast<Size>(huge) + 127) >> 7);
    EXPECT_GT(blocks, Size{1} << 24);
    check_blockable(huge, 7, 0);  // must not throw
}

TEST(BlockMath, RejectsBadBitsNamingModeAndDim)
{
    EXPECT_THROW(check_blockable(16, 0, 1), BlockRangeError);
    EXPECT_THROW(check_blockable(16, 9, 1), BlockRangeError);
    EXPECT_THROW(check_blockable(0, 4, 2), BlockRangeError);
    try {
        check_blockable(16, 9, 3);
        FAIL() << "expected BlockRangeError";
    } catch (const BlockRangeError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("mode 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("16"), std::string::npos) << msg;
    }
}

// ------------------------------------------------ differential oracle

TEST(Diff, TewAndTsAcceptCorrectRejectCorrupt)
{
    CooTensor x = random_tensor(3, 32, 300, 37);
    CooTensor y = x;
    Rng rng(41);
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    CooTensor z = x;
    tew_values(EwOp::kAdd, x.values().data(), y.values().data(),
               z.values().data(), x.nnz());
    EXPECT_TRUE(validate::diff_tew(EwOp::kAdd, x.values().data(),
                                   y.values().data(), z.values().data(),
                                   x.nnz())
                    .ok());
    z.values()[100] += 1.0f;
    const auto bad = validate::diff_tew(EwOp::kAdd, x.values().data(),
                                        y.values().data(),
                                        z.values().data(), x.nnz());
    EXPECT_FALSE(bad.ok());
    EXPECT_THROW(bad.require(), validate::ValidationError);

    CooTensor out = x;
    ts_values(TsOp::kMul, x.values().data(), out.values().data(), x.nnz(),
              1.0009f);
    EXPECT_TRUE(validate::diff_ts(TsOp::kMul, x.values().data(), 1.0009f,
                                  out.values().data(), x.nnz())
                    .ok());
    out.values()[5] = -out.values()[5];
    EXPECT_FALSE(validate::diff_ts(TsOp::kMul, x.values().data(), 1.0009f,
                                   out.values().data(), x.nnz())
                     .ok());
}

TEST(Diff, TtvAcceptsKernelOutputRejectsCorruption)
{
    CooTensor x = random_tensor(3, 24, 400, 43);
    Rng rng(47);
    DenseVector v = DenseVector::random(x.dim(1), rng);
    CooTensor out = ttv_coo(x, v, 1);
    EXPECT_TRUE(validate::diff_ttv(x, v, 1, out).ok());
    out.values()[0] += 10.0f;
    EXPECT_FALSE(validate::diff_ttv(x, v, 1, out).ok());
}

TEST(Diff, TtmAcceptsKernelOutputRejectsCorruption)
{
    CooTensor x = random_tensor(3, 24, 350, 53);
    Rng rng(59);
    DenseMatrix u = DenseMatrix::random(x.dim(0), 8, rng);
    ScooTensor out = ttm_coo(x, u, 0);
    EXPECT_TRUE(validate::diff_ttm(x, u, 0, out).ok());
    out.values()[3] += 5.0f;
    EXPECT_FALSE(validate::diff_ttm(x, u, 0, out).ok());
}

TEST(Diff, MttkrpAcceptsKernelOutputRejectsCorruption)
{
    CooTensor x = random_tensor(3, 20, 300, 61);
    Rng rng(67);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 8, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(x.dim(1), 8);
    mttkrp_coo(x, factors, 1, out);
    EXPECT_TRUE(validate::diff_mttkrp(x, factors, 1, out).ok());
    out(0, 0) += 3.0f;
    EXPECT_FALSE(validate::diff_mttkrp(x, factors, 1, out).ok());
}

TEST(Diff, MttkrpAllSchedulingVariantsPassTheOracle)
{
    // Every output-contention schedule must agree with the dense oracle:
    // auto-dispatched COO, forced atomic, forced privatized, and both
    // HiCOO paths (block-owner and atomic).
    ScopedMode guard(validate::Mode::kFull);
    CooTensor x = random_tensor(3, 24, 500, 79);
    HiCooTensor h = coo_to_hicoo(x, 3);
    Rng rng(83);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 8, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);

    for (Size mode = 0; mode < x.order(); ++mode) {
        DenseMatrix out(x.dim(mode), 8);
        mttkrp_coo(x, factors, mode, out);
        EXPECT_TRUE(validate::diff_mttkrp(x, factors, mode, out).ok())
            << "coo auto, mode " << mode;
        mttkrp_coo_atomic(x, factors, mode, out);
        EXPECT_TRUE(validate::diff_mttkrp(x, factors, mode, out).ok())
            << "coo atomic, mode " << mode;
        mttkrp_coo_privatized(x, factors, mode, out);
        EXPECT_TRUE(validate::diff_mttkrp(x, factors, mode, out).ok())
            << "coo privatized, mode " << mode;
        mttkrp_hicoo(h, factors, mode, out);
        EXPECT_TRUE(validate::diff_mttkrp(x, factors, mode, out).ok())
            << "hicoo auto, mode " << mode;
        mttkrp_hicoo_atomic(h, factors, mode, out);
        EXPECT_TRUE(validate::diff_mttkrp(x, factors, mode, out).ok())
            << "hicoo atomic, mode " << mode;
    }
}

TEST(ValidateFull, RadixSortedConversionsPassStructuralChecks)
{
    // Under PASTA_VALIDATE=full every conversion re-validates its output;
    // the radix-sorted orderings (lexicographic, Morton, gHiCOO hybrid,
    // sHiCOO sparse-block) must all satisfy the structural checkers.
    ScopedMode guard(validate::Mode::kFull);
    CooTensor x = random_tensor(3, 128, 2000, 89);

    HiCooTensor h = coo_to_hicoo(x, 4);  // sort_morton radix path
    EXPECT_TRUE(validate::validate(h).ok());
    CooTensor back = hicoo_to_coo(h);  // sort_lexicographic radix path
    EXPECT_TRUE(tensors_almost_equal(x, back, 1e-5));

    GHiCooTensor g = coo_to_ghicoo(x, {true, false, true}, 3);
    EXPECT_TRUE(validate::validate(g).ok());
    EXPECT_TRUE(tensors_almost_equal(x, ghicoo_to_coo(g), 1e-5));

    ScooTensor s = coo_to_scoo(x, 2);
    SHiCooTensor sh = scoo_to_shicoo(s, 3);
    EXPECT_TRUE(validate::validate(sh).ok());
}

// ------------------------------------------------ simulated device

TEST(DeviceMemory, AccountsAllocationsAndRaisesOom)
{
    auto& mem = gpusim::DeviceMemory::instance();
    const std::uint64_t old_capacity = mem.capacity();
    mem.set_capacity(1024);
    {
        gpusim::DeviceBuffer a(512, "a");
        EXPECT_GE(mem.used(), 512u);
        EXPECT_THROW(gpusim::DeviceBuffer(1024, "too big"),
                     gpusim::DeviceOomError);
        gpusim::DeviceBuffer b(512, "b");  // exactly fills the rest
    }
    EXPECT_EQ(mem.used(), 0u);
    try {
        mem.set_capacity(64);
        mem.allocate(128, "oversized operand");
        FAIL() << "expected DeviceOomError";
    } catch (const gpusim::DeviceOomError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("oversized operand"), std::string::npos) << msg;
        EXPECT_NE(msg.find("PASTA_GPUSIM_MEM_BYTES"), std::string::npos)
            << msg;
    }
    mem.set_capacity(old_capacity);
}

TEST(AccessMonitor, SpanRecordsViolationsOnlyWhenArmed)
{
    Value data[4] = {1, 2, 3, 4};
    auto span = gpusim::make_span<const Value>(data, 4);

    gpusim::AccessMonitor::arm(false);
    EXPECT_FLOAT_EQ(span[2], 3.0f);
    (void)span[3];
    EXPECT_EQ(gpusim::AccessMonitor::violations(), 0u);

    gpusim::AccessMonitor::arm(true);
    EXPECT_FLOAT_EQ(span[1], 2.0f);
    (void)span[9];  // out of bounds: recorded, served from the sink
    EXPECT_EQ(gpusim::AccessMonitor::violations(), 1u);
    EXPECT_THROW(
        gpusim::AccessMonitor::throw_if_access_violations("test_kernel"),
        validate::ValidationError);
    EXPECT_FALSE(gpusim::AccessMonitor::armed());

    gpusim::AccessMonitor::arm(true);
    gpusim::AccessMonitor::throw_if_access_violations("clean");  // no-op
    EXPECT_FALSE(gpusim::AccessMonitor::armed());
}

TEST(GpuSim, FullModeBoundsCheckedKernelsStillValidate)
{
    ScopedMode guard(validate::Mode::kFull);
    CooTensor x = random_tensor(3, 24, 300, 71);
    CooTensor y = x;
    Rng rng(73);
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    CooTensor z = x;
    gpusim::tew_gpu_coo(x, y, EwOp::kAdd, z);
    EXPECT_TRUE(validate::diff_tew(EwOp::kAdd, x.values().data(),
                                   y.values().data(), z.values().data(),
                                   x.nnz())
                    .ok());
}

}  // namespace
}  // namespace pasta
