// Conversion round-trip tests, including parameterized property sweeps
// over tensor orders and block sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/convert.hpp"

namespace pasta {
namespace {

CooTensor
random_tensor(Size order, Index dim, Size nnz, std::uint64_t seed)
{
    Rng rng(seed);
    return CooTensor::random(std::vector<Index>(order, dim), nnz, rng);
}

TEST(Convert, CooHicooRoundTripSmall)
{
    CooTensor x = random_tensor(3, 64, 400, 11);
    HiCooTensor h = coo_to_hicoo(x, 3);
    h.validate();
    EXPECT_EQ(h.nnz(), x.nnz());
    CooTensor back = hicoo_to_coo(h);
    EXPECT_TRUE(tensors_almost_equal(x, back));
}

TEST(Convert, HicooBlocksAreMortonSortedAndNonEmpty)
{
    CooTensor x = random_tensor(3, 128, 800, 13);
    HiCooTensor h = coo_to_hicoo(x, 4);
    EXPECT_GT(h.num_blocks(), 0u);
    for (Size b = 0; b < h.num_blocks(); ++b)
        EXPECT_GT(h.bptr()[b + 1], h.bptr()[b]);
    // Every block's coordinates must be distinct from its successor's.
    for (Size b = 1; b < h.num_blocks(); ++b) {
        bool same = true;
        for (Size m = 0; m < h.order(); ++m)
            same &= (h.block_index(m, b) == h.block_index(m, b - 1));
        EXPECT_FALSE(same) << "duplicate adjacent block " << b;
    }
}

TEST(Convert, HicooCompressesDenseClusters)
{
    // A tensor clustered into one block compresses far below COO size.
    CooTensor x({256, 256, 256});
    for (Index i = 0; i < 8; ++i)
        for (Index j = 0; j < 8; ++j)
            for (Index k = 0; k < 8; ++k)
                x.append({i, j, k}, 1.0f);
    HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_EQ(h.num_blocks(), 1u);
    EXPECT_LT(h.storage_bytes(), x.storage_bytes());
}

TEST(Convert, HicooOnHyperSparseLosesToCoo)
{
    // Hyper-sparse: every non-zero in its own block; the block metadata
    // makes HiCOO larger than COO (the gHiCOO motivation, §III-C).
    CooTensor x({1 << 16, 1 << 16, 1 << 16});
    Rng rng(3);
    for (int p = 0; p < 200; ++p)
        x.append({rng.next_index(1 << 16), rng.next_index(1 << 16),
                  rng.next_index(1 << 16)},
                 1.0f);
    x.sort_lexicographic();
    x.coalesce();
    HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_EQ(h.num_blocks(), h.nnz());
    EXPECT_GT(h.storage_bytes(), x.storage_bytes());
}

TEST(Convert, GhicooRoundTrip)
{
    CooTensor x = random_tensor(3, 64, 300, 17);
    GHiCooTensor g = coo_to_ghicoo(x, {true, true, false}, 3);
    g.validate();
    EXPECT_EQ(g.nnz(), x.nnz());
    CooTensor back = ghicoo_to_coo(g);
    EXPECT_TRUE(tensors_almost_equal(x, back));
}

TEST(Convert, GhicooAllCompressedMatchesHicooBlockCount)
{
    CooTensor x = random_tensor(3, 64, 300, 19);
    GHiCooTensor g = coo_to_ghicoo(x, {true, true, true}, 3);
    HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_EQ(g.num_blocks(), h.num_blocks());
}

TEST(Convert, GhicooUncompressedModeSavesBlocks)
{
    // Leaving a mode out of the blocking can only reduce (or keep) the
    // number of distinct blocks.
    CooTensor x = random_tensor(3, 64, 500, 23);
    GHiCooTensor all = coo_to_ghicoo(x, {true, true, true}, 3);
    GHiCooTensor partial = coo_to_ghicoo(x, {true, true, false}, 3);
    EXPECT_LE(partial.num_blocks(), all.num_blocks());
}

TEST(Convert, ScooRoundTripViaCoo)
{
    CooTensor x = random_tensor(3, 16, 120, 29);
    ScooTensor s = coo_to_scoo(x, 1);
    s.validate();
    CooTensor back = s.to_coo();
    EXPECT_TRUE(tensors_almost_equal(x, back));
}

TEST(Convert, ScooStripesMatchFiberCount)
{
    CooTensor x({4, 8, 4});
    x.append({1, 0, 1}, 1.0f);
    x.append({1, 3, 1}, 2.0f);  // same (i,k) fiber
    x.append({2, 5, 0}, 3.0f);
    ScooTensor s = coo_to_scoo(x, 1);
    EXPECT_EQ(s.num_sparse(), 2u);
    EXPECT_EQ(s.stripe_volume(), 8u);
}

TEST(Convert, ShicooRoundTripViaScoo)
{
    CooTensor x = random_tensor(3, 32, 200, 31);
    ScooTensor s = coo_to_scoo(x, 2);
    SHiCooTensor sh = scoo_to_shicoo(s, 3);
    sh.validate();
    EXPECT_EQ(sh.num_sparse(), s.num_sparse());
    CooTensor back = sh.to_scoo().to_coo();
    EXPECT_TRUE(tensors_almost_equal(x, back));
}

TEST(Convert, EmptyTensorsConvertCleanly)
{
    CooTensor x({16, 16, 16});
    HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_EQ(h.nnz(), 0u);
    EXPECT_EQ(h.num_blocks(), 0u);
    EXPECT_EQ(hicoo_to_coo(h).nnz(), 0u);
    GHiCooTensor g = coo_to_ghicoo(x, {true, false, true}, 3);
    EXPECT_EQ(g.nnz(), 0u);
    EXPECT_EQ(ghicoo_to_coo(g).nnz(), 0u);
}

TEST(Convert, TensorsAlmostEqualToleratesReordering)
{
    CooTensor a({8, 8});
    a.append({1, 1}, 1.0f);
    a.append({2, 2}, 2.0f);
    CooTensor b({8, 8});
    b.append({2, 2}, 2.0f);
    b.append({1, 1}, 1.0f);
    EXPECT_TRUE(tensors_almost_equal(a, b));
    b.values()[0] = 2.1f;
    EXPECT_FALSE(tensors_almost_equal(a, b, 1e-3));
    EXPECT_TRUE(tensors_almost_equal(a, b, 0.2));
}

// Property sweep: round trips must hold for every order x block-bits x
// density combination.
class ConvertRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvertRoundTrip, CooHicooCooIsLossless)
{
    const auto [order, block_bits, nnz] = GetParam();
    const Index dim = order == 1 ? 4096 : (order <= 3 ? 64 : 16);
    CooTensor x = random_tensor(order, dim, nnz,
                                1000 + order * 37 + block_bits);
    HiCooTensor h = coo_to_hicoo(x, block_bits);
    h.validate();
    EXPECT_TRUE(tensors_almost_equal(x, hicoo_to_coo(h)));
    // Conservation: block populations sum to nnz.
    EXPECT_EQ(h.bptr().back(), x.nnz());
}

TEST_P(ConvertRoundTrip, GhicooEveryLastModeUncompressed)
{
    const auto [order, block_bits, nnz] = GetParam();
    const Index dim = order == 1 ? 4096 : (order <= 3 ? 64 : 16);
    CooTensor x = random_tensor(order, dim, nnz,
                                2000 + order * 37 + block_bits);
    for (Size uncmp = 0; uncmp < static_cast<Size>(order); ++uncmp) {
        std::vector<bool> mask(order, true);
        mask[uncmp] = false;
        if (order == 1)
            break;  // needs at least one compressed mode
        GHiCooTensor g = coo_to_ghicoo(x, mask, block_bits);
        g.validate();
        EXPECT_TRUE(tensors_almost_equal(x, ghicoo_to_coo(g)))
            << "order " << order << " uncompressed mode " << uncmp;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndBlocks, ConvertRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 4, 7),
                       ::testing::Values(50, 400)));

}  // namespace
}  // namespace pasta
