// Bounded-memory execution tests: the memory governor, mmap-backed
// tensors, the chunked out-of-core kernels (bit-identity against the
// in-memory baselines across thread counts), partition checkpoint/
// resume, and the OOM -> streaming degradation ladder.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/stream.hpp"
#include "harness/fault.hpp"
#include "harness/journal.hpp"
#include "harness/trial.hpp"
#include "io/binary_io.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

class TempDir {
  public:
    TempDir()
    {
        path_ = std::filesystem::temp_directory_path() /
                ("pasta_oocore_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }

    std::string file(const std::string& name) const
    {
        return (path_ / name).string();
    }

  private:
    static inline int counter_ = 0;
    std::filesystem::path path_;
};

/// The governor is process-wide state; every test leaves it disarmed.
class Oocore : public ::testing::Test {
  protected:
    void TearDown() override
    {
        auto& gov = membudget::MemGovernor::instance();
        gov.configure(0);
        gov.set_degraded(false);
        gov.reset_peak();
        harness::FaultInjector::instance().clear();
    }
};

CooTensor
random_tensor(Size nnz, std::uint64_t seed, bool with_duplicates)
{
    const std::vector<Index> dims{64, 48, 32};
    Rng rng(seed);
    if (!with_duplicates) {
        CooTensor x = CooTensor::random(dims, nnz, rng);
        x.canonicalize(DuplicatePolicy::kSum);
        return x;
    }
    // Coordinates drawn from a small sub-box so duplicate runs appear.
    CooTensor x(dims);
    for (Size p = 0; p < nnz; ++p) {
        Coordinate c(dims.size());
        for (Size m = 0; m < dims.size(); ++m)
            c[m] = static_cast<Index>(rng.next_u64() % (dims[m] / 2));
        x.append(c, rng.next_float() + 0.25f);
    }
    return x;
}

void
expect_bit_identical(const CooTensor& a, const CooTensor& b)
{
    ASSERT_EQ(a.dims(), b.dims());
    ASSERT_EQ(a.nnz(), b.nnz());
    for (Size m = 0; m < a.order(); ++m)
        EXPECT_EQ(a.mode_indices(m), b.mode_indices(m)) << "mode " << m;
    ASSERT_EQ(a.values().size(), b.values().size());
    EXPECT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                             a.values().size() * sizeof(Value)));
}

// ---------------------------------------------------------------- governor

TEST_F(Oocore, GovernorEnforcesBudgetAndTracksPeak)
{
    auto& gov = membudget::MemGovernor::instance();
    gov.configure(1000);
    gov.reset_peak();
    ASSERT_TRUE(gov.enabled());

    gov.reserve(600, "a");
    EXPECT_EQ(gov.reserved(), 600u);
    EXPECT_THROW(gov.reserve(600, "b"), membudget::HostOomError);
    EXPECT_FALSE(gov.try_reserve(600, "b"));
    EXPECT_TRUE(gov.would_fit(400));
    EXPECT_FALSE(gov.would_fit(401));
    EXPECT_THROW(gov.check(500, "probe"), membudget::HostOomError);
    gov.check(400, "probe");  // fits: records the prospective peak
    EXPECT_EQ(gov.peak(), 1000u);

    gov.release(600);
    EXPECT_EQ(gov.reserved(), 0u);
    // Peak is a high-water mark: release does not lower it.
    EXPECT_EQ(gov.peak(), 1000u);
    gov.reset_peak();
    EXPECT_EQ(gov.peak(), 0u);

    // Double release clamps instead of underflowing.
    gov.release(100);
    EXPECT_EQ(gov.reserved(), 0u);

    gov.configure(0);
    EXPECT_FALSE(gov.enabled());
    gov.reserve(std::uint64_t{1} << 40, "unlimited");
    gov.release(std::uint64_t{1} << 40);
}

TEST_F(Oocore, GovernorRaiiReservationReleases)
{
    auto& gov = membudget::MemGovernor::instance();
    gov.configure(1000);
    {
        membudget::MemReservation r(700, "scoped");
        EXPECT_EQ(gov.reserved(), 700u);
        membudget::MemReservation moved(std::move(r));
        EXPECT_EQ(gov.reserved(), 700u);
    }
    EXPECT_EQ(gov.reserved(), 0u);
    EXPECT_THROW(membudget::MemReservation(1001, "too big"),
                 membudget::HostOomError);
    EXPECT_EQ(gov.reserved(), 0u);
}

TEST_F(Oocore, GovernorParsesEnvBudget)
{
    auto& gov = membudget::MemGovernor::instance();
    const auto with_env = [&](const char* value) {
        ::setenv("PASTA_MEM_BYTES", value, 1);
        gov.configure_from_env();
        ::unsetenv("PASTA_MEM_BYTES");
    };
    with_env("12345");
    EXPECT_EQ(gov.budget(), 12345u);
    with_env("512K");
    EXPECT_EQ(gov.budget(), 512u * 1024);
    with_env("2M");
    EXPECT_EQ(gov.budget(), 2u * 1024 * 1024);
    with_env("1G");
    EXPECT_EQ(gov.budget(), std::uint64_t{1} << 30);
    EXPECT_THROW(with_env("abc"), PastaError);
    EXPECT_THROW(with_env("12Q"), PastaError);
    // Unset leaves the previous budget untouched.
    ::unsetenv("PASTA_MEM_BYTES");
    gov.configure(777);
    gov.configure_from_env();
    EXPECT_EQ(gov.budget(), 777u);
}

TEST_F(Oocore, GovernorFaultPointFires)
{
    const auto& points = harness::known_fault_points();
    EXPECT_NE(std::find(points.begin(), points.end(), "mem.reserve"),
              points.end());
    EXPECT_NE(std::find(points.begin(), points.end(), "io.mmap"),
              points.end());

    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("mem.reserve:throw"));
    EXPECT_THROW(membudget::reserve(64, "chaos"), PastaError);
    harness::FaultInjector::instance().clear();
}

// -------------------------------------------------------------- binary IO

TEST_F(Oocore, MappedTensorMatchesInMemoryLoad)
{
    TempDir tmp;
    const CooTensor x = random_tensor(3000, 7, true);
    const std::string path = tmp.file("x.pstb");
    write_binary_file(path, x);

    const CooTensor loaded = read_binary_file(path);
    MappedCooTensor mapped(path);
    EXPECT_EQ(mapped.order(), x.order());
    EXPECT_EQ(mapped.dims(), x.dims());
    EXPECT_EQ(mapped.nnz(), x.nnz());
    EXPECT_TRUE(mapped.verify_checksum());
    expect_bit_identical(mapped.to_coo(), loaded);
    expect_bit_identical(mapped.to_coo(), x);

    // Zero-copy sections agree with the canonical arrays.
    for (Size m = 0; m < x.order(); ++m)
        EXPECT_EQ(0, std::memcmp(mapped.mode_indices(m),
                                 x.mode_indices(m).data(),
                                 x.nnz() * sizeof(Index)));
    EXPECT_EQ(0, std::memcmp(mapped.values(), x.values().data(),
                             x.nnz() * sizeof(Value)));

    // Slices restrict the stream order.
    const CooTensor mid = mapped.slice(100, 500);
    EXPECT_EQ(mid.nnz(), 400u);
    for (Size m = 0; m < x.order(); ++m)
        EXPECT_EQ(mid.index(m, 0), x.index(m, 100));
}

TEST_F(Oocore, TruncatedFilesDetectedUpFront)
{
    TempDir tmp;
    const CooTensor x = random_tensor(2000, 11, false);
    const std::string path = tmp.file("trunc.pstb");
    write_binary_file(path, x);
    const auto full = std::filesystem::file_size(path);

    // Torn tail (the classic killed-writer case).
    std::filesystem::resize_file(path, full - 9);
    EXPECT_THROW(read_binary_file(path), PastaError);
    EXPECT_THROW(MappedCooTensor{path}, PastaError);

    // Torn header.
    std::filesystem::resize_file(path, 10);
    EXPECT_THROW(read_binary_file(path), PastaError);
    EXPECT_THROW(MappedCooTensor{path}, PastaError);

    // A grown file (trailing garbage) is also not silently accepted.
    write_binary_file(path, x);
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f.write("xx", 2);
    }
    EXPECT_THROW(read_binary_file(path), PastaError);
    EXPECT_THROW(MappedCooTensor{path}, PastaError);
}

TEST_F(Oocore, MmapFaultPointFires)
{
    TempDir tmp;
    const std::string path = tmp.file("x.pstb");
    write_binary_file(path, random_tensor(100, 3, false));
    harness::FaultInjector::instance().configure(
        harness::parse_fault_spec("io.mmap:throw"));
    EXPECT_THROW(MappedCooTensor{path}, PastaError);
    harness::FaultInjector::instance().clear();
    MappedCooTensor ok(path);
    EXPECT_EQ(ok.nnz(), 100u);
}

// ------------------------------------------------------- streamed kernels

/// Budget that forces a genuine multi-partition sweep on the test
/// tensors while leaving every per-chunk probe feasible.
constexpr std::uint64_t kSweepBudget = 150'000;

TEST_F(Oocore, StreamedCoalesceBitIdenticalToInMemory)
{
    TempDir tmp;
    const CooTensor x = random_tensor(6000, 19, true);
    const std::string in_path = tmp.file("in.pstb");
    const std::string out_path = tmp.file("coalesced.pstb");
    write_binary_file(in_path, x);
    MappedCooTensor mapped(in_path);

    CooTensor expected = x;
    expected.canonicalize(DuplicatePolicy::kSum);

    membudget::MemGovernor::instance().configure(kSweepBudget);
    const stream::StreamDecision d =
        stream::coalesce_streamed(mapped, out_path);
    membudget::MemGovernor::instance().configure(0);

    EXPECT_TRUE(d.streamed);
    EXPECT_GE(d.partitions, 2u);
    EXPECT_EQ(d.variant,
              "coalesce_stream_p" + std::to_string(d.partitions));
    expect_bit_identical(read_binary_file(out_path), expected);
}

TEST_F(Oocore, StreamedTtvBitIdenticalAcrossThreadCounts)
{
    TempDir tmp;
    const CooTensor x = random_tensor(6000, 23, false);
    const std::string path = tmp.file("x.pstb");
    write_binary_file(path, x);
    MappedCooTensor mapped(path);

    const int saved_threads = num_threads();
    for (Size mode = 0; mode < x.order(); ++mode) {
        Rng rng(41 + mode);
        const DenseVector v = DenseVector::random(x.dim(mode), rng);
        const CooTensor expected = ttv_coo(x, v, mode);
        for (int threads : {1, 4, 8}) {
            set_num_threads(threads);
            CooTensor out;
            membudget::MemGovernor::instance().configure(kSweepBudget);
            const stream::StreamDecision d =
                stream::ttv_coo_stream(mapped, v, mode, out);
            membudget::MemGovernor::instance().configure(0);
            EXPECT_GE(d.partitions, 2u) << "mode " << mode;
            expect_bit_identical(out, expected);
        }
    }
    set_num_threads(saved_threads);
}

TEST_F(Oocore, StreamedMttkrpBitIdenticalAcrossThreadCounts)
{
    TempDir tmp;
    const CooTensor x = random_tensor(6000, 29, false);
    const std::string path = tmp.file("x.pstb");
    write_binary_file(path, x);
    MappedCooTensor mapped(path);

    const Size rank = 8;
    Rng rng(5);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);

    const int saved_threads = num_threads();
    for (Size mode = 0; mode < x.order(); ++mode) {
        DenseMatrix expected(x.dim(mode), rank);
        mttkrp_coo_seq(x, factors, mode, expected);
        for (int threads : {1, 4, 8}) {
            set_num_threads(threads);
            DenseMatrix out(x.dim(mode), rank);
            membudget::MemGovernor::instance().configure(kSweepBudget);
            const stream::StreamDecision d =
                stream::mttkrp_coo_stream(mapped, factors, mode, out);
            membudget::MemGovernor::instance().configure(0);
            EXPECT_GE(d.partitions, 2u) << "mode " << mode;
            EXPECT_EQ(0,
                      std::memcmp(out.data(), expected.data(),
                                  x.dim(mode) * rank * sizeof(Value)))
                << "mode " << mode << " at " << threads << " threads";
        }
    }
    set_num_threads(saved_threads);
}

TEST_F(Oocore, MttkrpCheckpointResumesAfterKill)
{
    TempDir tmp;
    const CooTensor x = random_tensor(6000, 31, false);
    const std::string path = tmp.file("x.pstb");
    const std::string ckpt = tmp.file("mttkrp.ckpt");
    write_binary_file(path, x);
    MappedCooTensor mapped(path);

    const Size rank = 8;
    Rng rng(9);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);

    DenseMatrix expected(x.dim(0), rank);
    mttkrp_coo_seq(x, factors, 0, expected);

    membudget::MemGovernor::instance().configure(kSweepBudget);

    // First run dies after the second partition's checkpoint landed
    // (the hook fires after the save, like a kill between partitions).
    stream::StreamOptions opts;
    opts.checkpoint_path = ckpt;
    opts.progress = [](Size done, Size) {
        if (done == 2)
            throw std::runtime_error("simulated kill");
    };
    DenseMatrix out(x.dim(0), rank);
    EXPECT_THROW(stream::mttkrp_coo_stream(mapped, factors, 0, out, opts),
                 std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(ckpt));

    // Second run resumes at partition 2 and finishes bit-identically.
    stream::StreamOptions resume;
    resume.checkpoint_path = ckpt;
    DenseMatrix out2(x.dim(0), rank);
    const stream::StreamDecision d =
        stream::mttkrp_coo_stream(mapped, factors, 0, out2, resume);
    membudget::MemGovernor::instance().configure(0);
    EXPECT_EQ(d.resumed_from, 2u);
    EXPECT_GT(d.partitions, 2u);
    EXPECT_EQ(0, std::memcmp(out2.data(), expected.data(),
                             x.dim(0) * rank * sizeof(Value)));

    // A corrupt checkpoint degrades to a fresh, still-correct sweep.
    {
        std::fstream f(ckpt, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(24);
        const char junk = 0x5a;
        f.write(&junk, 1);
    }
    DenseMatrix out3(x.dim(0), rank);
    membudget::MemGovernor::instance().configure(kSweepBudget);
    const stream::StreamDecision d3 =
        stream::mttkrp_coo_stream(mapped, factors, 0, out3, resume);
    membudget::MemGovernor::instance().configure(0);
    EXPECT_EQ(d3.resumed_from, 0u);
    EXPECT_EQ(0, std::memcmp(out3.data(), expected.data(),
                             x.dim(0) * rank * sizeof(Value)));
}

// --------------------------------------------------- degradation ladder

TEST_F(Oocore, BudgetedEntryPointsRouteByBudget)
{
    TempDir tmp;
    const CooTensor x = random_tensor(6000, 37, false);
    const std::string path = tmp.file("x.pstb");
    write_binary_file(path, x);
    MappedCooTensor mapped(path);

    const Size rank = 8;
    Rng rng(13);
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), rank, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix expected(x.dim(0), rank);
    mttkrp_coo_seq(x, factors, 0, expected);

    // Unlimited budget: the in-memory kernel runs.
    {
        DenseMatrix out(x.dim(0), rank);
        const stream::StreamDecision d =
            stream::mttkrp_coo_budgeted(mapped, factors, 0, out);
        EXPECT_FALSE(d.streamed);
        EXPECT_EQ(d.variant, "mttkrp_inmem");
    }

    // In-memory references, computed before the budget is armed (the
    // reference kernels meter their scratch too and would OOM).
    Rng vrng(17);
    const DenseVector v = DenseVector::random(x.dim(1), vrng);
    const CooTensor ttv_expected = ttv_coo(x, v, 1);
    CooTensor coalesce_expected = x;
    coalesce_expected.canonicalize(DuplicatePolicy::kSum);

    // Budget below the tensor footprint: streaming fallback, and the
    // governor-metered peak stays under the budget for the whole sweep.
    constexpr std::uint64_t kRouteBudget = 60'000;
    auto& gov = membudget::MemGovernor::instance();
    gov.configure(kRouteBudget);
    ASSERT_LT(kRouteBudget, membudget::coo_bytes(x.order(), x.nnz()));
    {
        gov.reset_peak();
        DenseMatrix out(x.dim(0), rank);
        const stream::StreamDecision d =
            stream::mttkrp_coo_budgeted(mapped, factors, 0, out);
        EXPECT_TRUE(d.streamed);
        EXPECT_EQ(d.variant,
                  "mttkrp_stream_p" + std::to_string(d.partitions));
        EXPECT_EQ(0, std::memcmp(out.data(), expected.data(),
                                 x.dim(0) * rank * sizeof(Value)));
        EXPECT_GT(gov.peak(), 0u);
        EXPECT_LE(gov.peak(), kRouteBudget);
    }
    {
        gov.reset_peak();
        CooTensor out;
        const stream::StreamDecision d =
            stream::ttv_coo_budgeted(mapped, v, 1, out);
        EXPECT_TRUE(d.streamed);
        expect_bit_identical(out, ttv_expected);
        EXPECT_LE(gov.peak(), kRouteBudget);
    }
    {
        gov.reset_peak();
        const std::string out_path = tmp.file("coalesced.pstb");
        const stream::StreamDecision d =
            stream::coalesce_budgeted(mapped, out_path);
        EXPECT_TRUE(d.streamed);
        gov.configure(0);  // reading the result back needs no budget
        expect_bit_identical(read_binary_file(out_path), coalesce_expected);
    }
}

TEST_F(Oocore, TrialHarnessDegradesOnHostOom)
{
    harness::TrialPolicy policy;
    policy.timeout_seconds = 0;
    policy.max_attempts = 3;
    policy.backoff_initial_s = 0.0;
    policy.backoff_max_s = 0.0;

    // First attempt hits the budget wall; the harness arms degraded mode
    // and the retry takes the streaming route.
    int attempts = 0;
    const harness::TrialResult ok = harness::run_guarded_trial(
        "degrade",
        [&attempts] {
            ++attempts;
            if (!membudget::degraded())
                throw membudget::HostOomError("working set over budget");
            return 1.0;
        },
        policy);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.attempts, 2);
    EXPECT_EQ(attempts, 2);
    EXPECT_FALSE(ok.oom);

    // Degraded mode is reset at the next trial's entry.
    const harness::TrialResult fresh = harness::run_guarded_trial(
        "fresh", [] { return membudget::degraded() ? 0.0 : 2.0; }, policy);
    EXPECT_TRUE(fresh.ok);
    EXPECT_EQ(fresh.seconds, 2.0);

    // Persistent OOM exhausts retries and classifies as oom.
    const harness::TrialResult bad = harness::run_guarded_trial(
        "hopeless",
        []() -> double { throw membudget::HostOomError("still too big"); },
        policy);
    EXPECT_FALSE(bad.ok);
    EXPECT_TRUE(bad.oom);
    EXPECT_EQ(bad.attempts, 3);
}

// ---------------------------------------------------------------- journal

TEST_F(Oocore, JournalCarriesMemoryAndPartitionFields)
{
    harness::JournalEntry entry;
    entry.tensor_id = "r1";
    entry.kernel = "MTTKRP";
    entry.format = "OOC";
    entry.ok = true;
    entry.seconds = 0.5;
    entry.mem_peak = 123456;
    entry.partitions_done = 5;
    entry.partitions_total = 16;

    harness::JournalEntry parsed;
    ASSERT_TRUE(harness::parse_json_line(harness::to_json_line(entry),
                                         parsed));
    EXPECT_EQ(parsed.mem_peak, 123456);
    EXPECT_EQ(parsed.partitions_done, 5);
    EXPECT_EQ(parsed.partitions_total, 16);

    // Pre-governor journal lines (no new fields) still parse.
    harness::JournalEntry legacy;
    ASSERT_TRUE(harness::parse_json_line(
        R"({"tensor":"r1","kernel":"TTV","format":"COO","ok":true,)"
        R"("seconds":1.5,"flops":1,"bytes":2,"attempts":1,"error":""})",
        legacy));
    EXPECT_EQ(legacy.mem_peak, 0);
    EXPECT_EQ(legacy.partitions_done, 0);
    EXPECT_EQ(legacy.partitions_total, 0);
}

}  // namespace
}  // namespace pasta
