// Tests for the SIMD micro-kernel layer: ISA dispatch/env parsing, every
// primitive bit-compared against the scalar path at widths 1..64
// (including non-multiple-of-lane remainders), forced-dispatch kernel
// runs, the heap-scratch fallback for rank > kMaxStackRank, and the
// fused CP-ALS / TTM-chain drivers against their unfused baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/rank_scratch.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttm_scoo.hpp"
#include "methods/cpd.hpp"
#include "methods/tucker.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "simd/microkernels.hpp"

namespace pasta {
namespace {

constexpr Size kMaxWidth = 64;

std::vector<simd::Isa>
supported_vector_isas()
{
    std::vector<simd::Isa> isas;
    if (simd::isa_supported(simd::Isa::kAvx2))
        isas.push_back(simd::Isa::kAvx2);
    if (simd::isa_supported(simd::Isa::kAvx512))
        isas.push_back(simd::Isa::kAvx512);
    return isas;
}

/// The dispatch caches and PASTA_SIMD* env are process-global; every
/// test starts and ends with a clean slate.
class SimdTest : public ::testing::Test {
  protected:
    void SetUp() override { clean(); }
    void TearDown() override
    {
        clean();
        obs::set_mode(obs::TraceMode::kOff);
        set_num_threads(0);
    }

  private:
    static void clean()
    {
        unsetenv("PASTA_SIMD");
        unsetenv("PASTA_SIMD_PREFETCH");
        simd::reset_isa_cache();
        simd::reset_prefetch_cache();
    }
};

std::vector<Value>
random_values(Size n, std::uint64_t seed, float lo = -1.0f,
              float hi = 1.0f)
{
    Rng rng(seed);
    std::vector<Value> v(n);
    for (Size i = 0; i < n; ++i)
        v[i] = lo + (hi - lo) * rng.next_float();
    return v;
}

/// Integer-valued floats: reductions over them are exact at any
/// association order (sums stay far below 2^24), so vdot/vdot_gather can
/// be compared for equality even though lanes reassociate.
std::vector<Value>
integer_values(Size n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(n);
    for (Size i = 0; i < n; ++i)
        v[i] = static_cast<Value>(static_cast<long>(rng.next_below(17)) -
                                  8);
    return v;
}

TEST_F(SimdTest, IsaNamesAndLanes)
{
    EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
    EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
    EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx512), "avx512");
    EXPECT_EQ(simd::isa_lanes(simd::Isa::kScalar), 1u);
    EXPECT_EQ(simd::isa_lanes(simd::Isa::kAvx2), 8u);
    EXPECT_EQ(simd::isa_lanes(simd::Isa::kAvx512), 16u);
}

TEST_F(SimdTest, ParseIsaAutoNamesAndErrors)
{
    EXPECT_EQ(simd::parse_isa(nullptr), simd::best_supported_isa());
    EXPECT_EQ(simd::parse_isa(""), simd::best_supported_isa());
    EXPECT_EQ(simd::parse_isa("auto"), simd::best_supported_isa());
    EXPECT_EQ(simd::parse_isa("scalar"), simd::Isa::kScalar);
    EXPECT_THROW(simd::parse_isa("sse42"), PastaError);
    EXPECT_THROW(simd::parse_isa("AVX2"), PastaError);
    for (simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kAvx512}) {
        if (simd::isa_supported(isa))
            EXPECT_EQ(simd::parse_isa(simd::isa_name(isa)), isa);
        else
            EXPECT_THROW(simd::parse_isa(simd::isa_name(isa)),
                         PastaError);
    }
}

TEST_F(SimdTest, ActiveIsaReadsAndCachesEnv)
{
    setenv("PASTA_SIMD", "scalar", 1);
    simd::reset_isa_cache();
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
    // Cached: changing the env without a reset does not re-resolve.
    setenv("PASTA_SIMD", "auto", 1);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
    simd::reset_isa_cache();
    EXPECT_EQ(simd::active_isa(), simd::best_supported_isa());
}

TEST_F(SimdTest, MalformedEnvThrows)
{
    setenv("PASTA_SIMD", "avx9000", 1);
    simd::reset_isa_cache();
    EXPECT_THROW(simd::active_isa(), PastaError);
}

TEST_F(SimdTest, PrefetchDistanceEnv)
{
    EXPECT_EQ(simd::prefetch_distance(), 8u);  // default
    setenv("PASTA_SIMD_PREFETCH", "32", 1);
    simd::reset_prefetch_cache();
    EXPECT_EQ(simd::prefetch_distance(), 32u);
    setenv("PASTA_SIMD_PREFETCH", "0", 1);
    simd::reset_prefetch_cache();
    EXPECT_EQ(simd::prefetch_distance(), 0u);
    for (const char* bad : {"abc", "-1", "8x", "5000"}) {
        setenv("PASTA_SIMD_PREFETCH", bad, 1);
        simd::reset_prefetch_cache();
        EXPECT_THROW(simd::prefetch_distance(), PastaError) << bad;
    }
}

TEST_F(SimdTest, ElementwisePrimitivesBitIdenticalToScalar)
{
    for (simd::Isa isa : supported_vector_isas()) {
        for (Size n = 1; n <= kMaxWidth; ++n) {
            const std::vector<Value> x = random_values(n, 11 * n + 1);
            const std::vector<Value> y =
                random_values(n, 13 * n + 2, 0.5f, 1.5f);
            const Value a = 0.75f;

            const auto run = [&](simd::Isa which, auto&& op) {
                std::vector<Value> acc = y;
                std::vector<Value> z(n, 0);
                op(which, acc, z);
                std::vector<Value> both = acc;
                both.insert(both.end(), z.begin(), z.end());
                return both;
            };
            const auto check = [&](const char* name, auto&& op) {
                const auto want = run(simd::Isa::kScalar, op);
                const auto got = run(isa, op);
                for (Size i = 0; i < want.size(); ++i)
                    ASSERT_EQ(want[i], got[i])
                        << name << " isa=" << simd::isa_name(isa)
                        << " n=" << n << " slot=" << i;
            };

            check("vfill", [&](simd::Isa w, std::vector<Value>& acc,
                               std::vector<Value>& z) {
                simd::vfill(w, z.data(), a, n);
                (void)acc;
            });
            check("vscale", [&](simd::Isa w, std::vector<Value>& acc,
                                std::vector<Value>& z) {
                simd::vscale(w, z.data(), x.data(), a, n);
                (void)acc;
            });
            check("vmul_accumulate",
                  [&](simd::Isa w, std::vector<Value>& acc,
                      std::vector<Value>& z) {
                      simd::vmul_accumulate(w, acc.data(), x.data(), n);
                      (void)z;
                  });
            check("vfma_rows", [&](simd::Isa w, std::vector<Value>& acc,
                                   std::vector<Value>& z) {
                simd::vfma_rows(w, acc.data(), x.data(), y.data(), n);
                (void)z;
            });
            check("vaxpy", [&](simd::Isa w, std::vector<Value>& acc,
                               std::vector<Value>& z) {
                simd::vaxpy(w, acc.data(), a, x.data(), n);
                (void)z;
            });
            check("vadd_inplace",
                  [&](simd::Isa w, std::vector<Value>& acc,
                      std::vector<Value>& z) {
                      simd::vadd_inplace(w, acc.data(), x.data(), n);
                      (void)z;
                  });
            check("vhadamard", [&](simd::Isa w, std::vector<Value>& acc,
                                   std::vector<Value>& z) {
                simd::vhadamard(w, z.data(), x.data(), y.data(), n);
                (void)acc;
            });
            check("vadd", [&](simd::Isa w, std::vector<Value>& acc,
                              std::vector<Value>& z) {
                simd::vadd(w, z.data(), x.data(), y.data(), n);
                (void)acc;
            });
            check("vsub", [&](simd::Isa w, std::vector<Value>& acc,
                              std::vector<Value>& z) {
                simd::vsub(w, z.data(), x.data(), y.data(), n);
                (void)acc;
            });
            check("vdiv", [&](simd::Isa w, std::vector<Value>& acc,
                              std::vector<Value>& z) {
                simd::vdiv(w, z.data(), x.data(), y.data(), n);
                (void)acc;
            });
        }
    }
}

TEST_F(SimdTest, DotReductionsExactOnIntegerValues)
{
    for (simd::Isa isa : supported_vector_isas()) {
        for (Size n = 1; n <= kMaxWidth; ++n) {
            const std::vector<Value> x = integer_values(n, 3 * n + 1);
            const std::vector<Value> y = integer_values(n, 5 * n + 2);
            EXPECT_EQ(simd::vdot(simd::Isa::kScalar, x.data(), y.data(),
                                 n),
                      simd::vdot(isa, x.data(), y.data(), n))
                << "vdot isa=" << simd::isa_name(isa) << " n=" << n;

            const Size table_size = 40;
            const std::vector<Value> table =
                integer_values(table_size, 7 * n + 3);
            Rng rng(9 * n + 4);
            std::vector<Index> idx(n);
            for (Size i = 0; i < n; ++i)
                idx[i] = rng.next_index(table_size);
            EXPECT_EQ(simd::vdot_gather(simd::Isa::kScalar, x.data(),
                                        idx.data(), table.data(), n),
                      simd::vdot_gather(isa, x.data(), idx.data(),
                                        table.data(), n))
                << "vdot_gather isa=" << simd::isa_name(isa)
                << " n=" << n;
        }
    }
}

TEST_F(SimdTest, DotReductionsWithinToleranceOnRandomValues)
{
    for (simd::Isa isa : supported_vector_isas()) {
        const Size n = 1000;
        const std::vector<Value> x = random_values(n, 21);
        const std::vector<Value> y = random_values(n, 22);
        const Value scalar =
            simd::vdot(simd::Isa::kScalar, x.data(), y.data(), n);
        const Value vec = simd::vdot(isa, x.data(), y.data(), n);
        EXPECT_NEAR(scalar, vec, 1e-4 * n);
    }
}

TEST_F(SimdTest, NoteKernelStampsLabelAndWidth)
{
    obs::set_mode(obs::TraceMode::kCounters);
    obs::reset_counters();
    const simd::Isa isa = simd::best_supported_isa();
    simd::set_isa(isa);
    EXPECT_EQ(simd::note_kernel(), isa);
    const obs::CountersSnapshot snap = obs::snapshot_counters();
    EXPECT_EQ(snap.label("simd.isa"), simd::isa_name(isa));
    EXPECT_EQ(snap.max_of("simd.width"), simd::isa_lanes(isa));
}

TEST_F(SimdTest, SetIsaRejectsUnsupported)
{
    if (simd::isa_supported(simd::Isa::kAvx512))
        GTEST_SKIP() << "every ISA is supported on this CPU";
    EXPECT_THROW(simd::set_isa(simd::Isa::kAvx512), PastaError);
}

// ---- kernel-level forced dispatch ----------------------------------

struct Problem {
    CooTensor x;
    std::vector<DenseMatrix> mats;

    FactorList factors() const
    {
        FactorList list;
        for (const auto& m : mats)
            list.push_back(&m);
        return list;
    }
};

Problem
make_problem(const std::vector<Index>& dims, Size nnz, Size rank,
             std::uint64_t seed)
{
    Rng rng(seed);
    Problem prob;
    prob.x = CooTensor::random(dims, nnz, rng);
    for (Index d : dims)
        prob.mats.push_back(DenseMatrix::random(d, rank, rng));
    return prob;
}

TEST_F(SimdTest, MttkrpForcedDispatchBitIdenticalToScalarPath)
{
    // Single worker: the elementwise primitives are bit-identical per
    // ISA, so at a fixed schedule the whole kernel must be too.
    set_num_threads(1);
    // Ranks straddle lane boundaries (remainders included).
    for (Size rank : {1u, 7u, 8u, 16u, 19u, 33u}) {
        Problem prob = make_problem({24, 16, 20}, 400, rank, 77 + rank);
        const HiCooTensor hicoo = coo_to_hicoo(prob.x, 4);
        for (Size mode = 0; mode < 3; ++mode) {
            simd::set_isa(simd::Isa::kScalar);
            DenseMatrix want(prob.x.dim(mode), rank);
            mttkrp_coo_atomic(prob.x, prob.factors(), mode, want);
            DenseMatrix want_h(prob.x.dim(mode), rank);
            mttkrp_hicoo(hicoo, prob.factors(), mode, want_h);
            for (simd::Isa isa : supported_vector_isas()) {
                simd::set_isa(isa);
                DenseMatrix got(prob.x.dim(mode), rank);
                mttkrp_coo_atomic(prob.x, prob.factors(), mode, got);
                DenseMatrix got_h(prob.x.dim(mode), rank);
                mttkrp_hicoo(hicoo, prob.factors(), mode, got_h);
                for (Size i = 0; i < want.rows(); ++i)
                    for (Size r = 0; r < rank; ++r) {
                        ASSERT_EQ(want(i, r), got(i, r))
                            << "coo isa=" << simd::isa_name(isa)
                            << " rank=" << rank << " mode=" << mode;
                        ASSERT_EQ(want_h(i, r), got_h(i, r))
                            << "hicoo isa=" << simd::isa_name(isa)
                            << " rank=" << rank << " mode=" << mode;
                    }
            }
        }
    }
}

TEST_F(SimdTest, RankBeyondStackScratchRegression)
{
    // rank > kMaxStackRank historically overran (then was rejected);
    // the heap fallback must now produce the same result as the
    // sequential reference.
    const Size rank = kMaxStackRank + 5;
    Problem prob = make_problem({12, 10, 8}, 150, rank, 5);
    DenseMatrix ref(prob.x.dim(1), rank);
    mttkrp_coo_seq(prob.x, prob.factors(), 1, ref);

    DenseMatrix out(prob.x.dim(1), rank);
    mttkrp_coo_atomic(prob.x, prob.factors(), 1, out);
    DenseMatrix out_p(prob.x.dim(1), rank);
    mttkrp_coo_privatized(prob.x, prob.factors(), 1, out_p);
    const HiCooTensor hicoo = coo_to_hicoo(prob.x, 4);
    DenseMatrix out_h(prob.x.dim(1), rank);
    mttkrp_hicoo(hicoo, prob.factors(), 1, out_h);
    for (Size i = 0; i < ref.rows(); ++i)
        for (Size r = 0; r < rank; ++r) {
            ASSERT_NEAR(ref(i, r), out(i, r),
                        1e-3 * std::abs(ref(i, r)) + 1e-4);
            ASSERT_NEAR(ref(i, r), out_p(i, r),
                        1e-3 * std::abs(ref(i, r)) + 1e-4);
            ASSERT_NEAR(ref(i, r), out_h(i, r),
                        1e-3 * std::abs(ref(i, r)) + 1e-4);
        }
}

// ---- fused method drivers ------------------------------------------

TEST_F(SimdTest, CpAlsFusedMatchesUnfusedDriver)
{
    Rng rng(42);
    const CooTensor x = CooTensor::random({20, 18, 16}, 300, rng);
    CpdOptions fused;
    fused.rank = 8;
    fused.max_sweeps = 4;
    fused.tolerance = 0.0;  // run all sweeps in both drivers
    fused.fused = true;
    CpdOptions unfused = fused;
    unfused.fused = false;
    const CpdResult a = cp_als(x, fused);
    const CpdResult b = cp_als(x, unfused);
    ASSERT_EQ(a.sweeps, b.sweeps);
    ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
    for (Size s = 0; s < a.fit_history.size(); ++s)
        EXPECT_NEAR(a.fit_history[s], b.fit_history[s], 1e-4) << s;
    for (Size m = 0; m < x.order(); ++m)
        for (Size i = 0; i < a.factors[m].rows(); ++i)
            for (Size r = 0; r < fused.rank; ++r)
                EXPECT_NEAR(a.factors[m](i, r), b.factors[m](i, r),
                            1e-2)
                    << m << "/" << i << "/" << r;
}

void
expect_coo_near(const CooTensor& a, const CooTensor& b, double tol)
{
    ASSERT_EQ(a.dims(), b.dims());
    ASSERT_EQ(a.nnz(), b.nnz());
    for (Size p = 0; p < a.nnz(); ++p) {
        ASSERT_EQ(a.coordinate(p), b.coordinate(p)) << "nnz " << p;
        ASSERT_NEAR(a.value(p), b.value(p),
                    tol * std::abs(a.value(p)) + tol)
            << "nnz " << p;
    }
}

TEST_F(SimdTest, TtmChainFusedMatchesStepwiseOrder3)
{
    Rng rng(7);
    const CooTensor x = CooTensor::random({24, 20, 16}, 500, rng);
    std::vector<DenseMatrix> mats;
    mats.push_back(DenseMatrix::random(24, 3, rng));
    mats.push_back(DenseMatrix::random(20, 4, rng));
    mats.push_back(DenseMatrix::random(16, 5, rng));
    const CooTensor fused = ttm_chain(x, mats, kNoMode, true);
    const CooTensor stepwise = ttm_chain(x, mats, kNoMode, false);
    expect_coo_near(fused, stepwise, 1e-3);
}

TEST_F(SimdTest, TtmChainFusedMatchesStepwiseOrder4)
{
    Rng rng(8);
    const CooTensor x = CooTensor::random({14, 12, 10, 8}, 400, rng);
    std::vector<DenseMatrix> mats;
    mats.push_back(DenseMatrix::random(14, 2, rng));
    mats.push_back(DenseMatrix::random(12, 3, rng));
    mats.push_back(DenseMatrix::random(10, 4, rng));
    mats.push_back(DenseMatrix::random(8, 5, rng));
    const CooTensor fused = ttm_chain(x, mats, kNoMode, true);
    const CooTensor stepwise = ttm_chain(x, mats, kNoMode, false);
    expect_coo_near(fused, stepwise, 1e-3);
}

TEST_F(SimdTest, TtmChainSkipModeUnaffectedByFuseFlag)
{
    Rng rng(9);
    const CooTensor x = CooTensor::random({24, 20, 16}, 500, rng);
    std::vector<DenseMatrix> mats;
    mats.push_back(DenseMatrix::random(24, 3, rng));
    mats.push_back(DenseMatrix::random(20, 4, rng));
    mats.push_back(DenseMatrix::random(16, 5, rng));
    // With a skipped mode only one contraction remains once the
    // intermediate is semi-sparse: the fused endgame must not fire.
    const CooTensor fused = ttm_chain(x, mats, 1, true);
    const CooTensor stepwise = ttm_chain(x, mats, 1, false);
    expect_coo_near(fused, stepwise, 0.0);
}

TEST_F(SimdTest, TtmScooFused2RejectsBadModeSets)
{
    Rng rng(10);
    const CooTensor x = CooTensor::random({12, 10, 8}, 200, rng);
    const DenseMatrix u0 = DenseMatrix::random(12, 3, rng);
    const DenseMatrix u1 = DenseMatrix::random(10, 4, rng);
    const DenseMatrix u2 = DenseMatrix::random(8, 5, rng);
    // ttm_coo leaves modes 1 and 2 sparse.
    const ScooTensor semi = ttm_coo(x, u0, 0);
    EXPECT_THROW(ttm_scoo_fused2(semi, u1, 1, u1, 1), PastaError);
    EXPECT_THROW(ttm_scoo_fused2(semi, u0, 0, u2, 2), PastaError);
    const CooTensor ok = ttm_scoo_fused2(semi, u1, 1, u2, 2);
    EXPECT_GT(ok.nnz(), 0u);
    // Swapped argument order contracts the same modes.
    const CooTensor swapped = ttm_scoo_fused2(semi, u2, 2, u1, 1);
    expect_coo_near(ok, swapped, 0.0);
}

}  // namespace
}  // namespace pasta
