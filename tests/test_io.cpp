// Tests for .tns and binary IO plus the disk-backed registry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "harness/fault.hpp"
#include "io/binary_io.hpp"
#include "io/registry.hpp"
#include "io/tns_io.hpp"

namespace pasta {
namespace {

class TempDir {
  public:
    TempDir()
    {
        path_ = std::filesystem::temp_directory_path() /
                ("pasta_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }

    std::string file(const std::string& name) const
    {
        return (path_ / name).string();
    }
    std::string dir() const { return path_.string(); }

  private:
    static inline int counter_ = 0;
    std::filesystem::path path_;
};

TEST(TnsIo, ParsesHeaderlessFrosttFormat)
{
    std::istringstream in(
        "# a comment\n"
        "1 1 1 1.5\n"
        "2 3 4 -2.0\n"
        "\n"
        "2 1 1 0.25\n");
    CooTensor t = read_tns(in);
    EXPECT_EQ(t.order(), 3u);
    EXPECT_EQ(t.nnz(), 3u);
    // Dims inferred from max coordinates.
    EXPECT_EQ(t.dims(), (std::vector<Index>{2, 3, 4}));
    EXPECT_FLOAT_EQ(t.at({0, 0, 0}), 1.5f);
    EXPECT_FLOAT_EQ(t.at({1, 2, 3}), -2.0f);
}

TEST(TnsIo, ParsesPartiHeader)
{
    std::istringstream in(
        "3\n"
        "10 20 30\n"
        "1 1 1 5.0\n");
    CooTensor t = read_tns(in);
    EXPECT_EQ(t.dims(), (std::vector<Index>{10, 20, 30}));
    EXPECT_EQ(t.nnz(), 1u);
}

TEST(TnsIo, RejectsMalformedInput)
{
    {
        std::istringstream in("1 2\n1 2 3\n");  // inconsistent arity
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        std::istringstream in("abc def 1.0\n");
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        std::istringstream in("0 1 2.0\n");  // 0 is not 1-based
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        std::istringstream in("3\n10 20\n");  // header arity mismatch
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        std::istringstream in("");
        EXPECT_THROW(read_tns(in), PastaError);
    }
    {
        std::istringstream in("3\n2 2 2\n5 1 1 1.0\n");  // out of range
        EXPECT_THROW(read_tns(in), PastaError);
    }
}

TEST(TnsIo, WriteReadRoundTrip)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({16, 8, 32}, 100, rng);
    std::ostringstream out;
    write_tns(out, x);
    std::istringstream in(out.str());
    CooTensor back = read_tns(in);
    EXPECT_EQ(back.dims(), x.dims());
    EXPECT_TRUE(tensors_almost_equal(x, back, 1e-4));
}

TEST(TnsIo, HeaderlessRoundTripLosesOnlyTrailingEmptySlices)
{
    Rng rng(2);
    CooTensor x = CooTensor::random({16, 16}, 50, rng);
    std::ostringstream out;
    write_tns(out, x, /*with_header=*/false);
    std::istringstream in(out.str());
    CooTensor back = read_tns(in);
    // Inferred dims are the max coordinate, <= the real dims.
    EXPECT_LE(back.dim(0), x.dim(0));
    EXPECT_EQ(back.nnz(), x.nnz());
}

TEST(TnsIo, FileRoundTripAndMissingFileError)
{
    TempDir tmp;
    Rng rng(3);
    CooTensor x = CooTensor::random({8, 8, 8}, 40, rng);
    write_tns_file(tmp.file("t.tns"), x);
    CooTensor back = read_tns_file(tmp.file("t.tns"));
    EXPECT_TRUE(tensors_almost_equal(x, back, 1e-4));
    EXPECT_THROW(read_tns_file(tmp.file("missing.tns")), PastaError);
}

TEST(BinaryIo, RoundTripIsExact)
{
    TempDir tmp;
    Rng rng(4);
    CooTensor x = CooTensor::random({100, 50, 25, 10}, 500, rng);
    write_binary_file(tmp.file("t.pstb"), x);
    CooTensor back = read_binary_file(tmp.file("t.pstb"));
    EXPECT_EQ(back.dims(), x.dims());
    EXPECT_TRUE(back.same_pattern(x));
    EXPECT_EQ(back.values(), x.values());
}

TEST(BinaryIo, RejectsCorruptFiles)
{
    TempDir tmp;
    {
        std::ofstream f(tmp.file("bad.pstb"), std::ios::binary);
        f << "NOTAPSTB";
    }
    EXPECT_THROW(read_binary_file(tmp.file("bad.pstb")), PastaError);
    EXPECT_THROW(read_binary_file(tmp.file("missing.pstb")), PastaError);
}

TEST(BinaryIo, RejectsTruncatedFile)
{
    TempDir tmp;
    Rng rng(5);
    CooTensor x = CooTensor::random({32, 32}, 100, rng);
    write_binary_file(tmp.file("t.pstb"), x);
    // Truncate to half size.
    const auto full = std::filesystem::file_size(tmp.file("t.pstb"));
    std::filesystem::resize_file(tmp.file("t.pstb"), full / 2);
    EXPECT_THROW(read_binary_file(tmp.file("t.pstb")), PastaError);
}

TEST(Registry, GeneratesThenServesFromCache)
{
    TempDir tmp;
    TensorRegistry registry(tmp.dir(), 1e-4);
    CooTensor first = registry.load("irrS");
    const DatasetSpec& spec = find_dataset("irrS");
    EXPECT_TRUE(std::filesystem::exists(registry.cache_path(spec)));
    CooTensor second = registry.load("irrS");
    EXPECT_TRUE(first.same_pattern(second));
    EXPECT_EQ(first.values(), second.values());
}

TEST(Registry, RegeneratesOnStaleCache)
{
    TempDir tmp;
    TensorRegistry registry(tmp.dir(), 1e-4);
    const DatasetSpec& spec = find_dataset("irrS");
    CooTensor first = registry.load("irrS");
    {
        std::ofstream f(registry.cache_path(spec), std::ios::binary);
        f << "garbage";
    }
    CooTensor second = registry.load("irrS");
    EXPECT_TRUE(first.same_pattern(second));
}

TEST(Registry, ConcurrentLoadsSeeOneConsistentTensor)
{
    TempDir tmp;
    const DatasetSpec& spec = find_dataset("irrS");
    // Cold cache: every thread races generate-and-publish; single-flight
    // means one synthesis, and atomic publication means no thread can
    // read a torn half-written file.
    constexpr int kThreads = 8;
    std::vector<CooTensor> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            TensorRegistry registry(tmp.dir(), 1e-4);
            results[static_cast<std::size_t>(t)] = registry.load("irrS");
        });
    for (auto& t : threads)
        t.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_TRUE(results[0].same_pattern(
            results[static_cast<std::size_t>(t)]));
        EXPECT_EQ(results[0].values(),
                  results[static_cast<std::size_t>(t)].values());
    }
    TensorRegistry registry(tmp.dir(), 1e-4);
    EXPECT_TRUE(std::filesystem::exists(registry.cache_path(spec)));
    // No leftover temp files from the publish protocol.
    for (const auto& entry :
         std::filesystem::directory_iterator(tmp.dir()))
        EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
            << entry.path();
}

TEST(Registry, ConcurrentReloadSurvivesInjectedCacheFaults)
{
    TempDir tmp;
    {
        TensorRegistry registry(tmp.dir(), 1e-4);
        registry.load("irrS");  // warm the cache
    }
    // Every cache read fails with probability 0.5: threads keep racing
    // the delete-and-regenerate path against plain cache reads.  The
    // invariant is that every load still returns the same tensor and
    // nobody crashes on a torn or vanished file.
    auto& injector = harness::FaultInjector::instance();
    injector.configure(harness::parse_fault_spec("cache.load:throw:0.5"),
                       11);
    constexpr int kThreads = 6;
    constexpr int kRounds = 4;
    std::vector<CooTensor> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            TensorRegistry registry(tmp.dir(), 1e-4);
            for (int r = 0; r < kRounds; ++r)
                results[static_cast<std::size_t>(t)] =
                    registry.load("irrS");
        });
    for (auto& t : threads)
        t.join();
    injector.clear();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_TRUE(results[0].same_pattern(
            results[static_cast<std::size_t>(t)]));
        EXPECT_EQ(results[0].values(),
                  results[static_cast<std::size_t>(t)].values());
    }
}

TEST(Registry, UnknownDatasetThrows)
{
    TensorRegistry registry("", 1e-4);
    EXPECT_THROW(registry.load("bogus"), PastaError);
}

TEST(Registry, EmptyCacheDirDisablesCaching)
{
    TensorRegistry registry("", 1e-4);
    const DatasetSpec& spec = find_dataset("irrS");
    EXPECT_TRUE(registry.cache_path(spec).empty());
    CooTensor t = registry.load("irrS");
    EXPECT_GT(t.nnz(), 0u);
}

}  // namespace
}  // namespace pasta
