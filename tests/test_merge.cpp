// Tests for the parallel merge engine (core/merge.*) and every consumer
// rewired onto it: general TEW (CPU, HiCOO re-blocked, simulated GPU
// two-phase), COO duplicate coalescing, and the bulk-fill plan builders.
// The engine's contract is bit-identical output at every worker count,
// so the checks compare raw index/value arrays with operator==, not an
// epsilon.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "core/coo_tensor.hpp"
#include "core/merge.hpp"
#include "gpusim/gpu_kernels.hpp"
#include "kernels/tew.hpp"
#include "kernels/ttv.hpp"
#include "validate/diff.hpp"

namespace pasta {
namespace {

/// RAII thread-count override so a test can force a worker count without
/// leaking it into later tests.
class ScopedThreads {
  public:
    explicit ScopedThreads(int n) : saved_(num_threads())
    {
        set_num_threads(n);
    }
    ~ScopedThreads() { set_num_threads(saved_); }

  private:
    int saved_;
};

/// Two random tensors over the same dims whose patterns overlap in
/// roughly `overlap_pct` percent of coordinates: y reuses a prefix of
/// x's coordinates and draws the rest fresh.
std::pair<CooTensor, CooTensor>
overlapping_pair(const std::vector<Index>& dims, Size nnz,
                 unsigned overlap_pct, std::uint64_t seed)
{
    Rng rng(seed);
    CooTensor x = CooTensor::random(dims, nnz, rng);
    CooTensor fresh = CooTensor::random(dims, nnz, rng);
    const Size shared = nnz * overlap_pct / 100;
    CooTensor y(dims);
    for (Size p = 0; p < shared; ++p)
        y.append(x.coordinate(p), rng.next_float() + 0.5f);
    for (Size p = shared; p < nnz; ++p)
        y.append(fresh.coordinate(p), rng.next_float() + 0.5f);
    y.canonicalize(DuplicatePolicy::kSum);
    return {x, y};
}

/// Exact (bit-level) equality of two COO tensors: dims, every index
/// array, and the value array.
void
expect_identical(const CooTensor& got, const CooTensor& want,
                 const char* what)
{
    ASSERT_EQ(got.dims(), want.dims()) << what;
    ASSERT_EQ(got.nnz(), want.nnz()) << what;
    for (Size m = 0; m < want.order(); ++m)
        EXPECT_EQ(got.mode_indices(m), want.mode_indices(m))
            << what << " mode " << m;
    EXPECT_EQ(got.values(), want.values()) << what;
}

TEST(ExclusiveScan, TotalsAndOffsets)
{
    std::vector<Size> counts = {3, 0, 2, 5};
    EXPECT_EQ(merge::exclusive_scan(counts), 10u);
    EXPECT_EQ(counts, (std::vector<Size>{0, 3, 3, 5}));
    std::vector<Size> empty;
    EXPECT_EQ(merge::exclusive_scan(empty), 0u);
}

TEST(MergePartition, CoversBothStreamsMonotonically)
{
    Rng rng(11);
    CooTensor x = CooTensor::random({64, 64, 64}, 500, rng);
    CooTensor y = CooTensor::random({64, 64, 64}, 300, rng);
    merge::MergeKeys keys(x, y, x.dims());
    EXPECT_EQ(keys.path(), merge::MergePath::kMerged64Key);
    for (Size segments : {Size{1}, Size{2}, Size{3}, Size{7}, Size{16}}) {
        merge::MergePartition part = keys.partition(segments);
        ASSERT_GE(part.segments(), 1u);
        EXPECT_EQ(part.a.front(), 0u);
        EXPECT_EQ(part.b.front(), 0u);
        EXPECT_EQ(part.a.back(), x.nnz());
        EXPECT_EQ(part.b.back(), y.nnz());
        for (Size s = 0; s + 1 < part.a.size(); ++s) {
            EXPECT_LE(part.a[s], part.a[s + 1]);
            EXPECT_LE(part.b[s], part.b[s + 1]);
        }
    }
}

TEST(MergePartition, NeverSplitsMatchedPairs)
{
    // All coordinates shared: any boundary that splits a matched pair
    // would double-count it under intersection.
    auto [x, y] = overlapping_pair({32, 32}, 400, 100, 12);
    merge::MergeKeys keys(x, y, x.dims());
    for (Size segments : {Size{2}, Size{3}, Size{5}, Size{13}}) {
        merge::MergePartition part = keys.partition(segments);
        Size total = 0;
        for (Size s = 0; s < part.segments(); ++s)
            total += keys.count_segment(part, s,
                                        merge::MergeSemantics::kIntersect);
        EXPECT_EQ(total, x.nnz()) << segments << " segments";
    }
}

TEST(TewGeneralMerge, EmptyOperands)
{
    CooTensor x({8, 8});
    CooTensor y({8, 8});
    y.append({1, 2}, 3.0f);
    EXPECT_EQ(tew_coo_general(x, y, EwOp::kMul).nnz(), 0u);
    CooTensor z = tew_coo_general(x, y, EwOp::kAdd);
    ASSERT_EQ(z.nnz(), 1u);
    EXPECT_FLOAT_EQ(z.at({1, 2}), 3.0f);
    EXPECT_EQ(tew_coo_general(x, x, EwOp::kAdd).nnz(), 0u);
}

TEST(TewGeneralMerge, FullyDisjointPatterns)
{
    CooTensor x({8, 8});
    x.append({0, 0}, 1.0f);
    x.append({2, 2}, 2.0f);
    CooTensor y({8, 8});
    y.append({1, 1}, 10.0f);
    y.append({3, 3}, 20.0f);
    CooTensor add = tew_coo_general(x, y, EwOp::kAdd);
    EXPECT_EQ(add.nnz(), 4u);
    EXPECT_FLOAT_EQ(add.at({2, 2}), 2.0f);
    EXPECT_FLOAT_EQ(add.at({3, 3}), 20.0f);
    EXPECT_TRUE(add.is_sorted_lexicographic());
    EXPECT_EQ(tew_coo_general(x, y, EwOp::kMul).nnz(), 0u);
    EXPECT_EQ(tew_coo_general(x, y, EwOp::kDiv).nnz(), 0u);
}

TEST(TewGeneralMerge, MulAndDivDropUnmatched)
{
    auto [x, y] = overlapping_pair({16, 16, 16}, 120, 50, 13);
    for (EwOp op : {EwOp::kMul, EwOp::kDiv}) {
        CooTensor z = tew_coo_general(x, y, op);
        for (Size p = 0; p < z.nnz(); ++p) {
            const Coordinate c = z.coordinate(p);
            EXPECT_NE(x.at(c), 0.0f) << ew_op_name(op);
            EXPECT_NE(y.at(c), 0.0f) << ew_op_name(op);
        }
        validate::diff_tew_general(op, x, y, z).require();
    }
}

TEST(TewGeneralMerge, MismatchedDimsTakeMaxExtent)
{
    CooTensor x({4, 16});
    x.append({3, 15}, 1.0f);
    CooTensor y({16, 4});
    y.append({15, 3}, 2.0f);
    CooTensor z = tew_coo_general(x, y, EwOp::kSub);
    EXPECT_EQ(z.dims(), (std::vector<Index>{16, 16}));
    EXPECT_FLOAT_EQ(z.at({3, 15}), 1.0f);
    EXPECT_FLOAT_EQ(z.at({15, 3}), -2.0f);
}

TEST(TewGeneralMerge, BitIdenticalToSerialAtEveryThreadCount)
{
    auto [x, y] = overlapping_pair({64, 64, 64}, 1000, 50, 14);
    for (EwOp op : {EwOp::kAdd, EwOp::kSub, EwOp::kMul, EwOp::kDiv}) {
        const CooTensor want = tew_coo_general_serial(x, y, op);
        for (int threads : {1, 2, 3, 8}) {
            ScopedThreads scope(threads);
            merge::MergePath path;
            CooTensor got = tew_coo_general(x, y, op, &path);
            EXPECT_EQ(path, merge::MergePath::kMerged64Key);
            expect_identical(got, want, ew_op_name(op));
        }
    }
}

TEST(TewGeneralMerge, ComparatorFallbackPastSixtyFourBits)
{
    // 3 modes x 30 bits = 90 bits: no 64-bit key exists.
    const std::vector<Index> dims = {1u << 30, 1u << 30, 1u << 30};
    Rng rng(15);
    CooTensor x = CooTensor::random(dims, 300, rng);
    CooTensor y = CooTensor::random(dims, 300, rng);
    const CooTensor want = tew_coo_general_serial(x, y, EwOp::kAdd);
    for (int threads : {1, 3}) {
        ScopedThreads scope(threads);
        merge::MergePath path;
        CooTensor got = tew_coo_general(x, y, EwOp::kAdd, &path);
        EXPECT_EQ(path, merge::MergePath::kMergedCmp);
        EXPECT_STREQ(merge::merge_path_name(path), "merged-cmp");
        expect_identical(got, want, "fallback add");
    }
}

TEST(TewGeneralMerge, OracleAcceptsAllOpsAndRejectsCorruption)
{
    auto [x, y] = overlapping_pair({32, 32}, 200, 50, 16);
    for (EwOp op : {EwOp::kAdd, EwOp::kSub, EwOp::kMul, EwOp::kDiv}) {
        CooTensor z = tew_coo_general(x, y, op);
        validate::DiffReport report = validate::diff_tew_general(op, x, y, z);
        EXPECT_TRUE(report.ok()) << report.summary();
    }
    CooTensor z = tew_coo_general(x, y, EwOp::kAdd);
    z.values()[z.nnz() / 2] += 1.0f;
    EXPECT_FALSE(validate::diff_tew_general(EwOp::kAdd, x, y, z).ok());
}

TEST(TewHicooGeneral, MergesAcrossDifferentBlockings)
{
    auto [x, y] = overlapping_pair({64, 64, 64}, 600, 50, 17);
    HiCooTensor hx = coo_to_hicoo(x, 3);
    HiCooTensor hy = coo_to_hicoo(y, 5);  // non-identical blocking
    merge::MergePath path;
    HiCooTensor hz = tew_hicoo_general(hx, hy, EwOp::kAdd, 0, &path);
    EXPECT_EQ(path, merge::MergePath::kMerged64Key);
    EXPECT_EQ(hz.block_bits(), hx.block_bits());
    CooTensor got = hicoo_to_coo(hz);
    got.canonicalize(DuplicatePolicy::kReject);
    expect_identical(got, tew_coo_general_serial(x, y, EwOp::kAdd),
                     "hicoo add");
    HiCooTensor hz4 = tew_hicoo_general(hx, hy, EwOp::kMul, 4);
    EXPECT_EQ(hz4.block_bits(), 4u);
}

TEST(TewGpuGeneral, TwoPhaseMatchesSerialReference)
{
    auto [x, y] = overlapping_pair({64, 64, 64}, 800, 50, 18);
    for (EwOp op : {EwOp::kAdd, EwOp::kSub, EwOp::kMul, EwOp::kDiv}) {
        CooTensor z({1, 1, 1});
        merge::MergePath path;
        gpusim::LaunchProfile profile =
            gpusim::tew_gpu_coo(x, y, op, z, &path);
        EXPECT_EQ(path, merge::MergePath::kMerged64Key);
        EXPECT_GT(profile.dram_bytes, 0u);
        expect_identical(z, tew_coo_general_serial(x, y, op),
                         ew_op_name(op));
        validate::diff_tew_general(op, x, y, z).require();
    }
}

TEST(TewGpuGeneral, SamePatternStillUsesValueSweep)
{
    Rng rng(19);
    CooTensor x = CooTensor::random({16, 16}, 60, rng);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    CooTensor z = x;
    gpusim::tew_gpu_coo(x, y, EwOp::kAdd, z);
    ASSERT_TRUE(z.same_pattern(x));
    for (Size p = 0; p < z.nnz(); ++p)
        EXPECT_FLOAT_EQ(z.value(p), x.value(p) + y.value(p));
}

TEST(ParallelCoalesce, DeterministicAcrossThreadCounts)
{
    // Duplicate-heavy stream: small coordinate space, many repeats.
    Rng rng(20);
    CooTensor base({6, 6});
    for (Size p = 0; p < 500; ++p)
        base.append({rng.next_index(6), rng.next_index(6)},
                    rng.next_float());
    base.sort_lexicographic();
    const Size dups = base.count_duplicates();
    EXPECT_GT(dups, 0u);

    CooTensor want;
    for (int threads : {1, 2, 3, 8}) {
        ScopedThreads scope(threads);
        CooTensor c = base;
        c.coalesce();
        EXPECT_EQ(c.nnz(), base.nnz() - dups);
        EXPECT_EQ(c.count_duplicates(), 0u);
        if (threads == 1)
            want = c;
        else
            expect_identical(c, want, "coalesce");
    }
}

TEST(ParallelCoalesce, CanonicalizeRejectsAndSums)
{
    CooTensor t({4, 4});
    t.append({2, 2}, 1.0f);
    t.append({2, 2}, 2.0f);
    t.append({0, 1}, 5.0f);
    CooTensor rejected = t;
    EXPECT_THROW(rejected.canonicalize(DuplicatePolicy::kReject),
                 PastaError);
    t.canonicalize(DuplicatePolicy::kSum);
    EXPECT_EQ(t.nnz(), 2u);
    EXPECT_FLOAT_EQ(t.at({2, 2}), 3.0f);
    CooTensor clean = CooTensor({4, 4});
    clean.append({1, 1}, 1.0f);
    clean.canonicalize(DuplicatePolicy::kReject);  // no-throw fast path
    EXPECT_EQ(clean.nnz(), 1u);
}

TEST(BulkFill, PlanBuildersMatchAppendSemantics)
{
    // The bulk-filled TTV plan pattern must be exactly what per-fiber
    // appends produced before: fiber heads in sorted order.
    Rng rng(21);
    CooTensor x = CooTensor::random({24, 24, 24}, 400, rng);
    CooTtvPlan plan = ttv_plan_coo(x, 1);
    const CooTensor& pat = plan.out_pattern;
    ASSERT_EQ(pat.nnz(), plan.fibers.num_fibers());
    EXPECT_TRUE(pat.is_sorted_lexicographic());
    for (Size f = 0; f < pat.nnz(); ++f) {
        const Size head = plan.fibers.fptr[f];
        Size o = 0;
        for (Size m = 0; m < x.order(); ++m) {
            if (m == 1)
                continue;
            EXPECT_EQ(pat.index(o, f), plan.sorted.index(m, head));
            ++o;
        }
        EXPECT_EQ(pat.value(f), 0.0f);
    }
}

}  // namespace
}  // namespace pasta
