// Campaign supervisor tests: lease claim/expiry/reclaim, the worker
// protocol (done markers, failure journaling, no-work), SIGKILL
// mid-trial -> exactly-once merged journal, heartbeat-timeout watchdog
// respawn, graceful drain with a resumable remainder, spawn-fault
// backoff, and torn-journal-line recovery.
//
// Supervisor tests run in fork-only mode (the shard body executes in
// the forked child); bodies stay free of OpenMP so forking from the
// test process is safe.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/membudget.hpp"
#include "harness/campaign.hpp"
#include "harness/fault.hpp"
#include "harness/journal.hpp"
#include "harness/lease.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pasta {
namespace {

namespace fs = std::filesystem;
using namespace harness;

class TempDir {
  public:
    TempDir()
    {
        path_ = fs::temp_directory_path() /
                ("pasta_campaign_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    std::string file(const std::string& name) const
    {
        return (path_ / name).string();
    }

  private:
    static inline int counter_ = 0;
    fs::path path_;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

void
spit(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

/// Fast supervisor knobs for tests (fork-only mode, tight ticks).
CampaignOptions
test_options(const TempDir& dir)
{
    CampaignOptions opts;
    opts.dir = dir.str();
    opts.workers = 2;
    opts.lease_ttl_s = 30.0;
    opts.heartbeat_interval_s = 0.05;
    opts.heartbeat_timeout_s = 10.0;
    opts.poll_interval_s = 0.02;
    opts.backoff_initial_s = 0.02;
    opts.backoff_max_s = 0.1;
    opts.install_signal_handlers = false;
    return opts;
}

std::vector<ShardSpec>
make_shards(int n)
{
    std::vector<ShardSpec> shards;
    for (int i = 0; i < n; ++i)
        shards.push_back({"shard" + std::to_string(i), "t0", "K",
                          "F" + std::to_string(i)});
    return shards;
}

JournalEntry
ok_entry(const ShardSpec& spec)
{
    JournalEntry entry;
    entry.tensor_id = spec.tensor;
    entry.kernel = spec.kernel;
    entry.format = spec.format;
    entry.shard = spec.name;
    entry.ok = true;
    entry.seconds = 0.001;
    entry.attempts = 1;
    return entry;
}

// ---- leases ---------------------------------------------------------

TEST(Lease, ClaimIsExclusiveWhileOwnerLives)
{
    TempDir dir;
    EXPECT_TRUE(try_claim_lease(dir.str(), "s", 30.0));
    // Same (live) process already owns it: a second claim must lose.
    EXPECT_FALSE(try_claim_lease(dir.str(), "s", 30.0));

    LeaseInfo info;
    ASSERT_TRUE(read_lease(lease_path(dir.str(), "s"), info));
    EXPECT_EQ(info.pid, static_cast<long>(::getpid()));
    EXPECT_TRUE(info.owner_alive);
    EXPECT_FALSE(lease_stale(info, 30.0));

    release_lease(dir.str(), "s");
    EXPECT_FALSE(fs::exists(lease_path(dir.str(), "s")));
    EXPECT_TRUE(try_claim_lease(dir.str(), "s", 30.0));
}

TEST(Lease, DeadOwnerIsStaleAndReclaimable)
{
    TempDir dir;
    // A child claims and dies without releasing — the SIGKILL'd worker.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(try_claim_lease(dir.str(), "s", 30.0) ? 0 : 1);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_EQ(WEXITSTATUS(status), 0);

    LeaseInfo info;
    ASSERT_TRUE(read_lease(lease_path(dir.str(), "s"), info));
    EXPECT_EQ(info.pid, static_cast<long>(child));
    EXPECT_FALSE(info.owner_alive);
    EXPECT_TRUE(lease_stale(info, 30.0));

    // Both the supervisor reap path and a racing claimer recover it.
    EXPECT_TRUE(try_claim_lease(dir.str(), "s", 30.0));
    release_lease(dir.str(), "s");
}

TEST(Lease, TtlExpiryAndHeartbeatRefresh)
{
    TempDir dir;
    ASSERT_TRUE(try_claim_lease(dir.str(), "s", 30.0));
    const std::string path = lease_path(dir.str(), "s");

    // Age the lease 10 s into the past: stale under a 5 s TTL even
    // though the owner (this process) is alive — the wedged-owner case.
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(10));
    LeaseInfo info;
    ASSERT_TRUE(read_lease(path, info));
    EXPECT_TRUE(info.owner_alive);
    EXPECT_TRUE(lease_stale(info, 5.0));

    // The heartbeat refresh makes it fresh again.
    refresh_lease(dir.str(), "s");
    ASSERT_TRUE(read_lease(path, info));
    EXPECT_FALSE(lease_stale(info, 5.0));
    EXPECT_FALSE(reclaim_lease_if_stale(dir.str(), "s", 5.0));

    // Re-aged, reclaim_if_stale removes it (and only when stale).
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(10));
    EXPECT_TRUE(reclaim_lease_if_stale(dir.str(), "s", 5.0));
    EXPECT_FALSE(fs::exists(path));
}

TEST(Lease, UnreadableLeaseIsReclaimed)
{
    TempDir dir;
    // A crash between O_EXCL create and the record write leaves an
    // empty lease; it must not block the shard.
    spit(lease_path(dir.str(), "s"), "");
    EXPECT_TRUE(try_claim_lease(dir.str(), "s", 30.0));
    LeaseInfo info;
    ASSERT_TRUE(read_lease(lease_path(dir.str(), "s"), info));
    EXPECT_EQ(info.pid, static_cast<long>(::getpid()));
}

// ---- exit classification -------------------------------------------

TEST(Campaign, ClassifiesWorkerExits)
{
    const auto status_of = [](int code, int sig) {
        const pid_t pid = ::fork();
        EXPECT_GE(pid, 0);
        if (pid == 0) {
            if (sig != 0) {
                ::raise(sig);
                ::pause();
            }
            ::_exit(code);
        }
        int status = 0;
        EXPECT_EQ(::waitpid(pid, &status, 0), pid);
        return status;
    };

    EXPECT_EQ(classify_exit(status_of(kWorkerExitClean, 0), false, false),
              ExitClass::kClean);
    EXPECT_EQ(classify_exit(status_of(kWorkerExitNoWork, 0), false, false),
              ExitClass::kNoWork);
    EXPECT_EQ(classify_exit(status_of(kWorkerExitOom, 0), false, false),
              ExitClass::kOom);
    EXPECT_EQ(classify_exit(status_of(kWorkerExitFailure, 0), false, false),
              ExitClass::kFailure);
    const int killed = status_of(0, SIGKILL);
    EXPECT_EQ(classify_exit(killed, false, false), ExitClass::kSignal);
    EXPECT_EQ(classify_exit(killed, true, false), ExitClass::kTimeout);
    EXPECT_EQ(classify_exit(killed, false, true), ExitClass::kChaos);
}

// ---- worker protocol ------------------------------------------------

TEST(Campaign, WorkerClaimsRunsAndPublishesDone)
{
    TempDir dir;
    const CampaignOptions opts = test_options(dir);
    const auto shards = make_shards(2);

    int ran = 0;
    const ShardBody body = [&](const ShardSpec& spec) {
        ++ran;
        return ok_entry(spec);
    };
    EXPECT_EQ(run_worker_once(opts, shards, body), kWorkerExitClean);
    EXPECT_EQ(run_worker_once(opts, shards, body), kWorkerExitClean);
    EXPECT_EQ(ran, 2);
    // Everything done: the next worker finds no claimable work.
    EXPECT_EQ(run_worker_once(opts, shards, body), kWorkerExitNoWork);
    EXPECT_EQ(ran, 2);

    for (const auto& spec : shards) {
        EXPECT_TRUE(fs::exists(dir.file("done/" + spec.name + ".done")));
        EXPECT_FALSE(
            fs::exists(dir.file("leases/" + spec.name + ".lease")));
        RunJournal journal(dir.file("journal." + spec.name + ".jsonl"));
        EXPECT_TRUE(journal.has_ok(spec.tensor, spec.kernel, spec.format,
                                   spec.name));
    }
}

TEST(Campaign, WorkerJournalsFailuresWithExitCodes)
{
    TempDir dir;
    const CampaignOptions opts = test_options(dir);
    const auto shards = make_shards(1);

    const ShardBody boom = [](const ShardSpec&) -> JournalEntry {
        throw std::runtime_error("kernel exploded");
    };
    EXPECT_EQ(run_worker_once(opts, shards, boom), kWorkerExitFailure);
    {
        RunJournal journal(dir.file("journal.shard0.jsonl"));
        const JournalEntry* entry =
            journal.find("t0", "K", "F0", "shard0");
        ASSERT_NE(entry, nullptr);
        EXPECT_FALSE(entry->ok);
        EXPECT_EQ(entry->failure_class, "error");
        EXPECT_EQ(entry->error, "kernel exploded");
    }
    EXPECT_FALSE(fs::exists(dir.file("done/shard0.done")));
    // The lease was released: the shard stays claimable for a retry.
    const ShardBody oom = [](const ShardSpec&) -> JournalEntry {
        throw membudget::HostOomError("budget exceeded");
    };
    EXPECT_EQ(run_worker_once(opts, shards, oom), kWorkerExitOom);
}

// ---- crash / exactly-once ------------------------------------------

TEST(Campaign, SigkillMidTrialYieldsExactlyOnceMergedJournal)
{
    TempDir dir;
    const CampaignOptions opts = test_options(dir);
    const auto shards = make_shards(1);
    const std::string gate = dir.file("first_attempt.flag");

    // Attempt 1 (child): announce mid-trial, then stall until SIGKILL'd
    // while holding the lease.  Attempt 2 (this process): finish.
    const ShardBody body = [&](const ShardSpec& spec) {
        if (!fs::exists(gate)) {
            spit(gate, "x");
            std::this_thread::sleep_for(std::chrono::seconds(30));
        }
        return ok_entry(spec);
    };

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(run_worker_once(opts, shards, body));
    while (!fs::exists(gate))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // The dead worker's lease is stale, so the retry claims the shard.
    EXPECT_EQ(run_worker_once(opts, shards, body), kWorkerExitClean);
    EXPECT_TRUE(fs::exists(dir.file("done/shard0.done")));

    const MergeStats stats =
        merge_journal_shards(dir.str(), dir.file("journal.merged.jsonl"));
    EXPECT_EQ(stats.entries, 1u);
    RunJournal merged(dir.file("journal.merged.jsonl"));
    EXPECT_TRUE(merged.has_ok("t0", "K", "F0", "shard0"));
}

TEST(Campaign, MergePrefersSuccessAndFoldsDuplicates)
{
    TempDir dir;
    // Two shard journals with a duplicate key: a progress line from a
    // killed attempt and the ok line from the rerun.
    JournalEntry progress;
    progress.tensor_id = "t0";
    progress.kernel = "K";
    progress.format = "F";
    progress.shard = "s0";
    progress.ok = false;
    progress.failure_class = "progress";
    progress.partitions_done = 3;
    JournalEntry done = progress;
    done.ok = true;
    done.failure_class = "";
    done.partitions_done = 8;
    JournalEntry other = progress;
    other.shard = "s1";
    other.ok = true;

    spit(dir.file("journal.s0.jsonl"), to_json_line(done) + "\n" +
                                           to_json_line(progress) + "\n");
    spit(dir.file("journal.s1.jsonl"), to_json_line(other) + "\n");

    const std::string merged = dir.file("journal.merged.jsonl");
    const MergeStats stats = merge_journal_shards(dir.str(), merged);
    EXPECT_EQ(stats.shard_files, 2u);
    EXPECT_EQ(stats.lines, 3u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.duplicates, 1u);

    RunJournal journal(merged);
    const JournalEntry* kept = journal.find("t0", "K", "F", "s0");
    ASSERT_NE(kept, nullptr);
    EXPECT_TRUE(kept->ok);  // the ok line beat the progress line
    EXPECT_EQ(kept->partitions_done, 8);

    // Re-merging with the merged file present must not double-count it,
    // and the output is byte-stable (sorted by key).
    const std::string first = slurp(merged);
    const MergeStats again = merge_journal_shards(dir.str(), merged);
    EXPECT_EQ(again.shard_files, 2u);
    EXPECT_EQ(slurp(merged), first);
}

// ---- torn journal lines --------------------------------------------

TEST(Campaign, TornFinalJournalLineIsTruncatedOnReplay)
{
    TempDir dir;
    const std::string path = dir.file("journal.s0.jsonl");
    JournalEntry entry;
    entry.tensor_id = "t0";
    entry.kernel = "K";
    entry.format = "F";
    entry.ok = true;
    const std::string good = to_json_line(entry) + "\n";
    // A SIGKILL mid-write leaves a torn, unterminated trailing line.
    spit(path, good + "{\"tensor\":\"t1\",\"ker");

    RunJournal journal(path);
    EXPECT_EQ(journal.size(), 1u);
    EXPECT_TRUE(journal.has_ok("t0", "K", "F"));
    // The torn tail was truncated off the file itself, so the next
    // append starts at a clean line boundary.
    EXPECT_EQ(slurp(path), good);

    JournalEntry next = entry;
    next.tensor_id = "t1";
    journal.append(next);
    journal.flush();
    RunJournal reload(path);
    EXPECT_EQ(reload.size(), 2u);
    EXPECT_TRUE(reload.has_ok("t1", "K", "F"));
}

// ---- supervisor -----------------------------------------------------

TEST(Campaign, SupervisorRunsAllShardsToDone)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 3;
    const auto shards = make_shards(5);

    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.shards_done, 5u);
    EXPECT_EQ(report.shards_failed, 0u);
    EXPECT_GE(report.exits_clean, 5);
    EXPECT_EQ(report.merge.entries, 5u);
    EXPECT_TRUE(fs::exists(dir.file("journal.merged.jsonl")));
    EXPECT_FALSE(fs::exists(dir.file("resume.list")));
}

TEST(Campaign, ChaosKillsAreSurvivedExactlyOnce)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 2;
    opts.chaos_kills = 2;
    opts.chaos_seed = 7;
    const auto shards = make_shards(4);

    // Slow enough that chaos catches workers mid-trial.
    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.shards_done, 4u);
    EXPECT_EQ(report.chaos_kills_sent, 2);
    EXPECT_GE(report.respawns, 2);
    // Exactly-once: one merged entry per shard, all successful, no
    // matter how many attempts the kills forced.
    EXPECT_EQ(report.merge.entries, 4u);
    RunJournal merged(dir.file("journal.merged.jsonl"));
    for (const auto& spec : shards)
        EXPECT_TRUE(merged.has_ok(spec.tensor, spec.kernel, spec.format,
                                  spec.name));
}

TEST(Campaign, HeartbeatTimeoutKillsWedgedWorkerAndRespawns)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 1;
    opts.heartbeat_interval_s = 0.03;
    opts.heartbeat_timeout_s = 0.3;
    opts.lease_ttl_s = 0.5;
    const auto shards = make_shards(1);
    const std::string gate = dir.file("wedged.flag");

    // First attempt wedges the whole process (SIGSTOP stops the
    // heartbeat thread too — exactly the stale-heartbeat case); the
    // respawned attempt succeeds.
    Supervisor supervisor(opts, shards, [&](const ShardSpec& spec) {
        if (!fs::exists(gate)) {
            spit(gate, "x");
            ::raise(SIGSTOP);
        }
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.shards_done, 1u);
    EXPECT_GE(report.exits_timeout, 1);
    EXPECT_GE(report.respawns, 1);
    EXPECT_EQ(report.merge.entries, 1u);
}

TEST(Campaign, DrainFinishesInFlightAndJournalsRemainder)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 1;
    const auto shards = make_shards(6);

    Supervisor* running = nullptr;
    opts.tick_hook = [&](int tick) {
        if (tick == 4 && running)
            running->request_drain();
    };
    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        return ok_entry(spec);
    });
    running = &supervisor;
    const CampaignReport report = supervisor.run();

    EXPECT_TRUE(report.drained);
    EXPECT_EQ(report.shards_failed, 0u);
    EXPECT_GT(report.shards_remaining, 0u);
    EXPECT_EQ(report.shards_done + report.shards_remaining, 6u);

    // The remainder is journaled for resume...
    const std::string resume = slurp(dir.file("resume.list"));
    for (const auto& spec : shards) {
        const bool done = fs::exists(dir.file("done/" + spec.name + ".done"));
        EXPECT_EQ(resume.find(spec.name) != std::string::npos, !done);
    }

    // ...and rerunning the same campaign dir finishes exactly it.
    CampaignOptions opts2 = test_options(dir);
    opts2.workers = 2;
    Supervisor resume_supervisor(opts2, shards, [](const ShardSpec& spec) {
        return ok_entry(spec);
    });
    const CampaignReport report2 = resume_supervisor.run();
    EXPECT_TRUE(report2.complete());
    EXPECT_EQ(report2.shards_done, 6u);
    EXPECT_EQ(report2.merge.entries, 6u);
    EXPECT_FALSE(fs::exists(dir.file("resume.list")));
}

TEST(Campaign, SpawnFaultPointTriggersBackoffNotFailure)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 1;
    const auto shards = make_shards(2);

    // The first two spawn attempts fault (proc.spawn satellite); the
    // campaign must back off and still complete.
    FaultInjector::instance().configure(
        parse_fault_spec("proc.spawn:throw@1,proc.spawn:throw@2"));
    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();
    FaultInjector::instance().clear();

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.shards_done, 2u);
    EXPECT_GE(report.spawn_faults, 2);
}

TEST(Campaign, RetryBudgetExhaustionFailsShardAndContinues)
{
    TempDir dir;
    CampaignOptions opts = test_options(dir);
    opts.workers = 1;
    opts.shard_retry_budget = 2;
    const auto shards = make_shards(2);

    // shard0 always crashes its worker; shard1 succeeds.  The campaign
    // must fail shard0 terminally after 2 attempts and still finish.
    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        if (spec.name == "shard0")
            ::raise(SIGKILL);
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();

    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.shards_done, 1u);
    EXPECT_EQ(report.shards_failed, 1u);
    EXPECT_EQ(report.shards_remaining, 0u);
    EXPECT_TRUE(fs::exists(dir.file("failed/shard0.failed")));
    // The supervisor journaled the terminal failure for the record.
    RunJournal merged(dir.file("journal.merged.jsonl"));
    const JournalEntry* entry = merged.find("t0", "K", "F0", "shard0");
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->ok);
    EXPECT_NE(entry->error.find("retry budget exhausted"),
              std::string::npos);
}

TEST(Campaign, MetricsArmedCampaignAggregatesCountersAndMergesTraces)
{
    TempDir dir;
    TempDir elsewhere;  // env path OUTSIDE the campaign dir: the shard
                        // scan must only see per-shard heartbeats
    ::setenv("PASTA_METRICS",
             (elsewhere.file("env.jsonl") + ",100").c_str(), 1);
    obs::metrics::stop_exporter();
    obs::metrics::reset_metrics();
    obs::set_mode(obs::TraceMode::kSpans);
    obs::reset_spans();

    CampaignOptions opts = test_options(dir);
    opts.workers = 2;
    const auto shards = make_shards(3);
    Supervisor supervisor(opts, shards, [](const ShardSpec& spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return ok_entry(spec);
    });
    const CampaignReport report = supervisor.run();
    ::unsetenv("PASTA_METRICS");
    obs::set_mode(obs::TraceMode::kOff);
    obs::reset_spans();
    obs::metrics::stop_exporter();
    obs::metrics::reset_metrics();

    ASSERT_TRUE(report.complete());
    // Every worker process exported a per-shard heartbeat and its final
    // snapshot carries exactly that shard's trial counter; summing the
    // last snapshots therefore equals the merged journal's entry count.
    for (const auto& spec : shards) {
        std::string hb = "metrics.";
        hb += spec.name;
        hb += ".jsonl";
        EXPECT_TRUE(fs::exists(dir.file(hb)));
    }
    EXPECT_GE(report.metrics.shard_files, shards.size());
    EXPECT_EQ(report.metrics.merged.counter("campaign.trial.ok"),
              report.merge.entries);
    EXPECT_EQ(report.metrics.merged.counter("campaign.trial.failed"), 0u);
    EXPECT_EQ(report.metrics.merged.source, "campaign");

    // The aggregate file is itself a tailable heartbeat whose last line
    // round-trips to the report's merged snapshot.
    obs::metrics::MetricsSnapshot last;
    ASSERT_TRUE(obs::metrics::load_last_snapshot(
        dir.file("metrics.campaign.jsonl"), last));
    EXPECT_EQ(last.counter("campaign.trial.ok"), report.merge.entries);

    // Spans were armed: every worker (and the supervisor) exported a
    // trace and they merged onto one clock-aligned timeline with one
    // pid track per process.
    EXPECT_TRUE(report.trace_merged);
    const std::string merged = slurp(dir.file("campaign.trace.json"));
    ASSERT_FALSE(merged.empty());
    EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(merged.find("\"pastaMeta\""), std::string::npos);
    EXPECT_NE(merged.find("campaign.shard.shard0"), std::string::npos);
    // Distinct pid tracks: at least two different "pid":N values.
    std::set<std::string> pids;
    for (std::size_t pos = merged.find("\"pid\":");
         pos != std::string::npos;
         pos = merged.find("\"pid\":", pos + 1)) {
        std::size_t end = pos + 6;
        while (end < merged.size() &&
               std::isdigit(static_cast<unsigned char>(merged[end])))
            ++end;
        pids.insert(merged.substr(pos + 6, end - pos - 6));
    }
    EXPECT_GE(pids.size(), 2u);
}

TEST(Campaign, FromEnvReadsShardsAndChaos)
{
    ::setenv("PASTA_SHARDS", "5", 1);
    ::setenv("PASTA_CHAOS", "3", 1);
    ::setenv("PASTA_FAULT_SEED", "99", 1);
    const CampaignOptions opts = CampaignOptions::from_env();
    EXPECT_EQ(opts.workers, 5);
    EXPECT_EQ(opts.chaos_kills, 3);
    EXPECT_EQ(opts.chaos_seed, 99u);
    ::setenv("PASTA_SHARDS", "not-a-number", 1);
    EXPECT_THROW(CampaignOptions::from_env(), PastaError);
    ::unsetenv("PASTA_SHARDS");
    ::unsetenv("PASTA_CHAOS");
    ::unsetenv("PASTA_FAULT_SEED");
}

}  // namespace
}  // namespace pasta
