// Tests for general sparse tensor-tensor contraction.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/contraction.hpp"
#include "kernels/reference.hpp"

namespace pasta {
namespace {

TEST(Contract, MatrixProductAsContraction)
{
    // A (2x3) * B (3x2): contract A mode 1 with B mode 0.
    CooTensor a({2, 3});
    a.append({0, 0}, 1.0f);
    a.append({0, 2}, 2.0f);
    a.append({1, 1}, 3.0f);
    CooTensor b({3, 2});
    b.append({0, 1}, 4.0f);
    b.append({1, 0}, 5.0f);
    b.append({2, 1}, 6.0f);
    CooTensor c = contract(a, {1}, b, {0});
    EXPECT_EQ(c.dims(), (std::vector<Index>{2, 2}));
    // c(0,1) = 1*4 + 2*6 = 16; c(1,0) = 3*5 = 15.
    EXPECT_FLOAT_EQ(c.at({0, 1}), 16.0f);
    EXPECT_FLOAT_EQ(c.at({1, 0}), 15.0f);
    EXPECT_EQ(c.nnz(), 2u);
}

TEST(Contract, OutputModesAreFreeAThenFreeB)
{
    Rng rng(1);
    CooTensor a = CooTensor::random({4, 6, 8}, 30, rng);
    CooTensor b = CooTensor::random({8, 10}, 20, rng);
    CooTensor c = contract(a, {2}, b, {0});
    EXPECT_EQ(c.dims(), (std::vector<Index>{4, 6, 10}));
}

TEST(Contract, MatchesDenseReference)
{
    Rng rng(2);
    CooTensor a = CooTensor::random({6, 7, 8}, 80, rng);
    CooTensor b = CooTensor::random({8, 7, 5}, 70, rng);
    // Contract a's modes {1,2} with b's modes {1,0}.
    CooTensor c = contract(a, {1, 2}, b, {1, 0});
    EXPECT_EQ(c.dims(), (std::vector<Index>{6, 5}));

    // Dense check.
    DenseTensor da = DenseTensor::from_coo(a);
    DenseTensor db = DenseTensor::from_coo(b);
    DenseTensor expected({6, 5});
    for (Index i = 0; i < 6; ++i)
        for (Index u = 0; u < 5; ++u) {
            double acc = 0;
            for (Index j = 0; j < 7; ++j)
                for (Index k = 0; k < 8; ++k)
                    acc += da.at({i, j, k}) * db.at({k, j, u});
            expected.at({i, u}) = acc;
        }
    EXPECT_TRUE(tensors_almost_equal(c, expected.to_coo(), 1e-3));
}

TEST(Contract, FullContractionYieldsScalar)
{
    CooTensor a({3, 3});
    a.append({0, 0}, 2.0f);
    a.append({1, 2}, 3.0f);
    CooTensor b({3, 3});
    b.append({0, 0}, 5.0f);
    b.append({1, 2}, 7.0f);
    b.append({2, 2}, 11.0f);
    CooTensor c = contract(a, {0, 1}, b, {0, 1});
    EXPECT_EQ(c.order(), 1u);
    EXPECT_EQ(c.dims(), (std::vector<Index>{1}));
    EXPECT_FLOAT_EQ(c.at({0}), 2 * 5 + 3 * 7.0f);
}

TEST(Contract, InnerProductHelper)
{
    Rng rng(3);
    CooTensor a = CooTensor::random({10, 10, 10}, 100, rng);
    // <a, a> = sum of squares.
    double expected = 0;
    for (Size p = 0; p < a.nnz(); ++p)
        expected += static_cast<double>(a.value(p)) * a.value(p);
    EXPECT_NEAR(inner_product(a, a), expected, 1e-3 * expected);
    // Disjoint patterns: zero.
    CooTensor b({10, 10, 10});
    b.append({9, 9, 9}, 1.0f);
    CooTensor lone({10, 10, 10});
    lone.append({0, 0, 0}, 1.0f);
    EXPECT_DOUBLE_EQ(inner_product(b, lone), 0.0);
}

TEST(Contract, EmptyOperandsGiveEmptyOutput)
{
    CooTensor a({4, 4});
    CooTensor b({4, 4});
    b.append({1, 1}, 1.0f);
    EXPECT_EQ(contract(a, {1}, b, {0}).nnz(), 0u);
    EXPECT_EQ(contract(b, {1}, a, {0}).nnz(), 0u);
}

TEST(Contract, DisjointContractionIndicesGiveEmptyOutput)
{
    CooTensor a({4, 4});
    a.append({0, 0}, 1.0f);
    CooTensor b({4, 4});
    b.append({1, 1}, 1.0f);
    EXPECT_EQ(contract(a, {1}, b, {0}).nnz(), 0u);
}

TEST(Contract, RejectsBadArguments)
{
    CooTensor a({4, 5});
    CooTensor b({5, 4});
    EXPECT_THROW(contract(a, {0, 1}, b, {0}), PastaError);  // arity
    EXPECT_THROW(contract(a, {}, b, {}), PastaError);       // empty
    EXPECT_THROW(contract(a, {0}, b, {0}), PastaError);     // extents 4v5
    EXPECT_THROW(contract(a, {2}, b, {0}), PastaError);     // range
    EXPECT_THROW(contract(a, {1, 1}, b, {0, 1}), PastaError);  // dup
}

TEST(Contract, TtvAgreementWithSparseVector)
{
    // Contracting with an order-1 dense-as-sparse vector must equal TTV.
    Rng rng(4);
    CooTensor x = CooTensor::random({8, 9, 10}, 90, rng);
    DenseVector v = DenseVector::random(10, rng);
    CooTensor vs({10});
    for (Index k = 0; k < 10; ++k)
        vs.append({k}, v[k]);
    CooTensor got = contract(x, {2}, vs, {0});
    DenseTensor expected =
        ref_ttv(DenseTensor::from_coo(x), v, 2);
    EXPECT_TRUE(tensors_almost_equal(got, expected.to_coo(), 1e-3));
}

TEST(Contract, AccumulatesDuplicateOutputCoordinates)
{
    // Two different contraction paths landing on the same output cell.
    CooTensor a({2, 3});
    a.append({0, 0}, 1.0f);
    a.append({0, 1}, 2.0f);
    CooTensor b({3, 2});
    b.append({0, 0}, 3.0f);
    b.append({1, 0}, 4.0f);
    CooTensor c = contract(a, {1}, b, {0});
    // c(0,0) = 1*3 + 2*4 = 11 accumulated into one non-zero.
    EXPECT_EQ(c.nnz(), 1u);
    EXPECT_FLOAT_EQ(c.at({0, 0}), 11.0f);
}

}  // namespace
}  // namespace pasta
