// Tests for the Roofline machinery and the Table I cost model.
#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include "analysis/efficiency.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "roofline/ert.hpp"
#include "roofline/machine.hpp"
#include "roofline/roofline.hpp"

namespace pasta {
namespace {

TEST(Machine, PaperPlatformParametersMatchTableIII)
{
    const MachineSpec b = bluesky();
    EXPECT_EQ(b.cores, 24);
    EXPECT_DOUBLE_EQ(b.peak_sp_gflops, 1000.0);
    EXPECT_DOUBLE_EQ(b.mem_bw_gbs, 256.0);
    EXPECT_DOUBLE_EQ(b.llc_mb, 19.0);
    const MachineSpec w = wingtip();
    EXPECT_EQ(w.cores, 56);
    EXPECT_DOUBLE_EQ(w.peak_sp_gflops, 2000.0);
    const MachineSpec p = dgx_1p();
    EXPECT_TRUE(p.is_gpu);
    EXPECT_DOUBLE_EQ(p.mem_bw_gbs, 732.0);
    const MachineSpec v = dgx_1v();
    EXPECT_DOUBLE_EQ(v.peak_sp_gflops, 14900.0);
    EXPECT_DOUBLE_EQ(v.mem_bw_gbs, 900.0);
    EXPECT_EQ(paper_platforms().size(), 4u);
}

TEST(Machine, ErtBandwidthsBelowTheoretical)
{
    for (const auto& spec : paper_platforms()) {
        EXPECT_LT(spec.ert_dram_gbs, spec.mem_bw_gbs) << spec.name;
        EXPECT_GT(spec.ert_llc_gbs, spec.ert_dram_gbs) << spec.name;
    }
}

TEST(Roofline, AttainableIsMinOfRoofs)
{
    // Left of the ridge: bandwidth-limited.
    EXPECT_DOUBLE_EQ(attainable_gflops(1000.0, 200.0, 0.1), 20.0);
    // Right of the ridge: compute-limited.
    EXPECT_DOUBLE_EQ(attainable_gflops(1000.0, 200.0, 100.0), 1000.0);
    EXPECT_THROW(attainable_gflops(0.0, 200.0, 1.0), PastaError);
}

TEST(Roofline, RidgePoint)
{
    EXPECT_DOUBLE_EQ(ridge_point(1000.0, 200.0), 5.0);
}

TEST(Roofline, SampleCurveIsMonotoneAndCapped)
{
    const auto curve = sample_roofline(1000.0, 200.0, 0.01, 100.0, 64);
    ASSERT_EQ(curve.size(), 64u);
    for (Size i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].gflops, curve[i - 1].gflops);
        EXPECT_LE(curve[i].gflops, 1000.0);
    }
    EXPECT_NEAR(curve.front().oi, 0.01, 1e-9);
    EXPECT_NEAR(curve.back().oi, 100.0, 1e-6);
}

TEST(CostModel, TableOneThirdOrderOperationalIntensities)
{
    // Reproduce Table I's OI column for a cubical third-order tensor.
    TensorStats stats;
    stats.order = 3;
    stats.nnz = 1'000'000;
    stats.num_fibers = 100'000;  // I << M_F << M
    stats.num_blocks = 20'000;
    stats.block_size = 128;
    const Size rank = 16;

    const KernelCost tew = kernel_cost(Kernel::kTew, Format::kCoo, stats);
    EXPECT_NEAR(tew.oi(), 1.0 / 12.0, 1e-9);
    const KernelCost ts = kernel_cost(Kernel::kTs, Format::kCoo, stats);
    EXPECT_NEAR(ts.oi(), 1.0 / 8.0, 1e-9);
    const KernelCost ttv = kernel_cost(Kernel::kTtv, Format::kCoo, stats);
    EXPECT_NEAR(ttv.oi(), 1.0 / 6.0, 0.02);  // ~1/6 per the paper
    const KernelCost ttm =
        kernel_cost(Kernel::kTtm, Format::kCoo, stats, rank);
    EXPECT_NEAR(ttm.oi(), 0.5, 0.15);  // ~1/2
    const KernelCost mttkrp =
        kernel_cost(Kernel::kMttkrp, Format::kCoo, stats, rank);
    EXPECT_NEAR(mttkrp.oi(), 0.25, 0.05);  // ~1/4
}

TEST(CostModel, TableOneExactByteFormulas)
{
    TensorStats stats;
    stats.order = 3;
    stats.nnz = 1000;
    stats.num_fibers = 100;
    stats.num_blocks = 10;
    stats.block_size = 128;

    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kTew, Format::kCoo, stats).bytes, 12000.0);
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kTs, Format::kHicoo, stats).bytes, 8000.0);
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kTtv, Format::kCoo, stats).bytes,
        12.0 * 1000 + 12.0 * 100);
    // COO-TTM: 4MR + 4 M_F R + 8M + 16 M_F with R=16.
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kTtm, Format::kCoo, stats, 16).bytes,
        4.0 * 1000 * 16 + 4.0 * 100 * 16 + 8.0 * 1000 + 16.0 * 100);
    // HiCOO-TTM drops one 8 M_F term.
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kTtm, Format::kHicoo, stats, 16).bytes,
        4.0 * 1000 * 16 + 4.0 * 100 * 16 + 8.0 * 1000 + 8.0 * 100);
    // COO-MTTKRP: 12MR + 16M.
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kMttkrp, Format::kCoo, stats, 16).bytes,
        12.0 * 1000 * 16 + 16.0 * 1000);
    // HiCOO-MTTKRP: 12R min(n_b B, M) + 7M + 20 n_b; n_b B = 1280 > M.
    EXPECT_DOUBLE_EQ(
        kernel_cost(Kernel::kMttkrp, Format::kHicoo, stats, 16).bytes,
        12.0 * 16 * 1000 + 7.0 * 1000 + 20.0 * 10);
}

TEST(CostModel, HicooMttkrpBeatsCooWhenBlocksAreDense)
{
    // Densely packed blocks: n_b B < M, so the min() kicks in and HiCOO
    // moves fewer bytes (Table I's HiCOO advantage).
    TensorStats stats;
    stats.order = 3;
    stats.nnz = 100'000;
    stats.num_blocks = 50;
    stats.block_size = 128;  // n_b B = 6400 << M
    const double coo =
        kernel_cost(Kernel::kMttkrp, Format::kCoo, stats, 16).bytes;
    const double hicoo =
        kernel_cost(Kernel::kMttkrp, Format::kHicoo, stats, 16).bytes;
    EXPECT_LT(hicoo, coo);
}

TEST(CostModel, FlopsScaleWithOrderForMttkrp)
{
    TensorStats s3;
    s3.order = 3;
    s3.nnz = 1000;
    s3.num_blocks = 1;
    TensorStats s5 = s3;
    s5.order = 5;
    EXPECT_LT(kernel_cost(Kernel::kMttkrp, Format::kCoo, s3, 8).flops,
              kernel_cost(Kernel::kMttkrp, Format::kCoo, s5, 8).flops);
}

TEST(CostModel, ComputeStatsCountsRealStructures)
{
    Rng rng(1);
    CooTensor x = CooTensor::random({32, 32, 32}, 400, rng);
    TensorStats stats = compute_stats(x, 2, 3);
    EXPECT_EQ(stats.order, 3u);
    EXPECT_EQ(stats.nnz, 400u);
    EXPECT_GT(stats.num_fibers, 0u);
    EXPECT_LE(stats.num_fibers, stats.nnz);
    EXPECT_GT(stats.num_blocks, 0u);
    EXPECT_LE(stats.num_blocks, stats.nnz);
    EXPECT_EQ(stats.block_size, 8u);
}

TEST(CostModel, GflopsArithmetic)
{
    EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(gflops(1e9, 0.0), 0.0);
}

TEST(Efficiency, RunMathIsConsistent)
{
    MeasuredRun run;
    run.kernel = Kernel::kTs;
    run.format = Format::kCoo;
    run.seconds = 1e-3;
    run.cost.flops = 1e6;
    run.cost.bytes = 8e6;
    const MachineSpec spec = bluesky();
    EXPECT_DOUBLE_EQ(run_gflops(run), 1.0);
    // Roofline = OI (1/8) x 205 GB/s = 25.625 GFLOPS.
    EXPECT_NEAR(run_roofline_gflops(run, spec), 25.625, 1e-9);
    EXPECT_NEAR(run_efficiency(run, spec), 1.0 / 25.625, 1e-9);
}

TEST(Efficiency, SummaryFiltersAndAverages)
{
    MeasuredRun a;
    a.kernel = Kernel::kTs;
    a.format = Format::kCoo;
    a.seconds = 1e-3;
    a.cost = {1e6, 8e6};
    MeasuredRun b = a;
    b.seconds = 0.5e-3;
    MeasuredRun other = a;
    other.kernel = Kernel::kTew;
    const auto summary = summarize({a, b, other}, Kernel::kTs,
                                   Format::kCoo, bluesky());
    EXPECT_EQ(summary.runs, 2u);
    EXPECT_DOUBLE_EQ(summary.min_gflops, 1.0);
    EXPECT_DOUBLE_EQ(summary.max_gflops, 2.0);
    EXPECT_DOUBLE_EQ(summary.mean_gflops, 1.5);
}

TEST(Efficiency, EmptySummaryIsZeroed)
{
    const auto summary =
        summarize({}, Kernel::kTtv, Format::kHicoo, wingtip());
    EXPECT_EQ(summary.runs, 0u);
    EXPECT_DOUBLE_EQ(summary.mean_gflops, 0.0);
    EXPECT_DOUBLE_EQ(summary.min_gflops, 0.0);
}

TEST(Ert, QuickSweepProducesOrderedRoofs)
{
    // A deliberately tiny sweep to keep the test fast.
    ErtOptions options;
    options.min_bytes = 1 << 16;
    options.max_bytes = 1 << 22;
    options.llc_boundary_bytes = 1 << 18;
    options.seconds_per_point = 0.002;
    const ErtResult result = run_ert(options);
    EXPECT_FALSE(result.samples.empty());
    EXPECT_GT(result.dram_bw_gbs, 0.0);
    EXPECT_GE(result.llc_bw_gbs, result.dram_bw_gbs);
    EXPECT_GT(result.peak_gflops, 0.0);
    const MachineSpec host = host_machine_spec(result);
    EXPECT_DOUBLE_EQ(host.ert_dram_gbs, result.dram_bw_gbs);
    EXPECT_FALSE(host.is_gpu);
}

TEST(Names, KernelAndFormatNames)
{
    EXPECT_STREQ(kernel_name(Kernel::kMttkrp), "MTTKRP");
    EXPECT_STREQ(format_name(Format::kHicoo), "HiCOO");
}

}  // namespace
}  // namespace pasta
