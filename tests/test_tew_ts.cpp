// Tests for the TEW and TS kernels (COO and HiCOO) against the dense
// reference implementations.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/reference.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"

namespace pasta {
namespace {

/// Two tensors with identical pattern and different values.
std::pair<CooTensor, CooTensor>
same_pattern_pair(const std::vector<Index>& dims, Size nnz,
                  std::uint64_t seed)
{
    Rng rng(seed);
    CooTensor x = CooTensor::random(dims, nnz, rng);
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    return {x, y};
}

TEST(Tew, SamePatternAddMatchesReference)
{
    auto [x, y] = same_pattern_pair({16, 16, 16}, 200, 1);
    CooTensor z = tew_coo(x, y, EwOp::kAdd);
    DenseTensor expected =
        ref_tew(DenseTensor::from_coo(x), DenseTensor::from_coo(y),
                EwOp::kAdd);
    EXPECT_TRUE(tensors_almost_equal(z, expected.to_coo()));
}

TEST(Tew, AllOpsMatchScalarSemantics)
{
    auto [x, y] = same_pattern_pair({8, 8}, 30, 2);
    for (EwOp op :
         {EwOp::kAdd, EwOp::kSub, EwOp::kMul, EwOp::kDiv}) {
        CooTensor z = tew_coo(x, y, op);
        ASSERT_EQ(z.nnz(), x.nnz());
        for (Size p = 0; p < z.nnz(); ++p)
            EXPECT_FLOAT_EQ(z.value(p),
                            apply_ew(op, x.value(p), y.value(p)))
                << ew_op_name(op) << " at " << p;
    }
}

TEST(Tew, OutputSharesInputPattern)
{
    auto [x, y] = same_pattern_pair({16, 16}, 50, 3);
    CooTensor z = tew_coo(x, y, EwOp::kMul);
    EXPECT_TRUE(z.same_pattern(x));
}

TEST(Tew, RejectsMismatchedPatterns)
{
    Rng rng(4);
    CooTensor x = CooTensor::random({8, 8}, 20, rng);
    CooTensor y = CooTensor::random({8, 8}, 21, rng);
    EXPECT_THROW(tew_coo(x, y, EwOp::kAdd), PastaError);
}

TEST(TewGeneral, UnionSemanticsForAdd)
{
    CooTensor x({4, 4});
    x.append({0, 0}, 1.0f);
    x.append({1, 1}, 2.0f);
    CooTensor y({4, 4});
    y.append({1, 1}, 10.0f);
    y.append({2, 2}, 20.0f);
    CooTensor z = tew_coo_general(x, y, EwOp::kAdd);
    EXPECT_EQ(z.nnz(), 3u);
    EXPECT_FLOAT_EQ(z.at({0, 0}), 1.0f);
    EXPECT_FLOAT_EQ(z.at({1, 1}), 12.0f);
    EXPECT_FLOAT_EQ(z.at({2, 2}), 20.0f);
}

TEST(TewGeneral, SubtractionNegatesUnmatchedRhs)
{
    CooTensor x({4, 4});
    x.append({0, 0}, 5.0f);
    CooTensor y({4, 4});
    y.append({0, 0}, 2.0f);
    y.append({3, 3}, 7.0f);
    CooTensor z = tew_coo_general(x, y, EwOp::kSub);
    EXPECT_FLOAT_EQ(z.at({0, 0}), 3.0f);
    EXPECT_FLOAT_EQ(z.at({3, 3}), -7.0f);
}

TEST(TewGeneral, IntersectionSemanticsForMul)
{
    CooTensor x({4, 4});
    x.append({0, 0}, 3.0f);
    x.append({1, 1}, 4.0f);
    CooTensor y({4, 4});
    y.append({1, 1}, 5.0f);
    y.append({2, 2}, 6.0f);
    CooTensor z = tew_coo_general(x, y, EwOp::kMul);
    EXPECT_EQ(z.nnz(), 1u);
    EXPECT_FLOAT_EQ(z.at({1, 1}), 20.0f);
}

TEST(TewGeneral, DifferentShapesTakeMaxDims)
{
    CooTensor x({4, 8});
    x.append({3, 7}, 1.0f);
    CooTensor y({8, 4});
    y.append({7, 3}, 2.0f);
    CooTensor z = tew_coo_general(x, y, EwOp::kAdd);
    EXPECT_EQ(z.dims(), (std::vector<Index>{8, 8}));
    EXPECT_EQ(z.nnz(), 2u);
}

TEST(TewGeneral, MatchesDenseReferenceOnRandomInputs)
{
    Rng rng(5);
    CooTensor x = CooTensor::random({12, 12, 12}, 150, rng);
    CooTensor y = CooTensor::random({12, 12, 12}, 170, rng);
    for (EwOp op : {EwOp::kAdd, EwOp::kSub, EwOp::kMul}) {
        CooTensor z = tew_coo_general(x, y, op);
        DenseTensor expected =
            ref_tew(DenseTensor::from_coo(x), DenseTensor::from_coo(y), op);
        EXPECT_TRUE(tensors_almost_equal(z, expected.to_coo()))
            << ew_op_name(op);
    }
}

TEST(TewGeneral, RejectsDifferentOrders)
{
    CooTensor x({4, 4});
    CooTensor y({4, 4, 4});
    EXPECT_THROW(tew_coo_general(x, y, EwOp::kAdd), PastaError);
}

TEST(TewHicoo, MatchesCooResult)
{
    auto [x, y] = same_pattern_pair({32, 32, 32}, 300, 6);
    HiCooTensor hx = coo_to_hicoo(x, 3);
    HiCooTensor hy = coo_to_hicoo(y, 3);
    HiCooTensor hz = tew_hicoo(hx, hy, EwOp::kAdd);
    CooTensor expected = tew_coo(x, y, EwOp::kAdd);
    EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(hz), expected));
}

TEST(TewHicoo, RejectsStructureMismatch)
{
    auto [x, y] = same_pattern_pair({32, 32, 32}, 100, 7);
    HiCooTensor hx = coo_to_hicoo(x, 3);
    HiCooTensor hy = coo_to_hicoo(y, 4);  // different block size
    EXPECT_THROW(tew_hicoo(hx, hy, EwOp::kAdd), PastaError);
}

TEST(Ts, AddAndMulMatchReference)
{
    Rng rng(8);
    CooTensor x = CooTensor::random({16, 16}, 64, rng);
    for (TsOp op : {TsOp::kAdd, TsOp::kMul}) {
        CooTensor y = ts_coo(x, op, 2.5f);
        CooTensor expected = ref_ts(x, op, 2.5f);
        EXPECT_TRUE(y.same_pattern(expected));
        for (Size p = 0; p < y.nnz(); ++p)
            EXPECT_FLOAT_EQ(y.value(p), expected.value(p));
    }
}

TEST(Ts, SubtractAndDivideViaAddMul)
{
    // The suite implements TSA/TSM only; TSS/TSD derive from them
    // (paper §II-B).
    Rng rng(9);
    CooTensor x = CooTensor::random({16, 16}, 64, rng);
    const Value s = 4.0f;
    CooTensor sub = ts_coo(x, TsOp::kAdd, -s);
    CooTensor div = ts_coo(x, TsOp::kMul, 1.0f / s);
    for (Size p = 0; p < x.nnz(); ++p) {
        EXPECT_FLOAT_EQ(sub.value(p), x.value(p) - s);
        EXPECT_FLOAT_EQ(div.value(p), x.value(p) / s);
    }
}

TEST(Ts, HicooMatchesCoo)
{
    Rng rng(10);
    CooTensor x = CooTensor::random({32, 32, 32}, 256, rng);
    HiCooTensor hx = coo_to_hicoo(x, 3);
    HiCooTensor hy = ts_hicoo(hx, TsOp::kMul, 3.0f);
    CooTensor expected = ts_coo(x, TsOp::kMul, 3.0f);
    EXPECT_TRUE(tensors_almost_equal(hicoo_to_coo(hy), expected));
}

TEST(Ts, EmptyTensorIsFine)
{
    CooTensor x({8, 8});
    CooTensor y = ts_coo(x, TsOp::kAdd, 1.0f);
    EXPECT_EQ(y.nnz(), 0u);
}

// Property sweep: TEW/TS correct across orders and ops.
class TewTsSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TewTsSweep, TewAndTsMatchReference)
{
    const auto [order, nnz] = GetParam();
    const Index dim = order == 1 ? 1024 : (order <= 3 ? 24 : 10);
    auto [x, y] =
        same_pattern_pair(std::vector<Index>(order, dim), nnz,
                          100 + order);
    CooTensor z = tew_coo(x, y, EwOp::kMul);
    for (Size p = 0; p < z.nnz(); ++p)
        EXPECT_FLOAT_EQ(z.value(p), x.value(p) * y.value(p));
    CooTensor t = ts_coo(x, TsOp::kAdd, 1.5f);
    for (Size p = 0; p < t.nnz(); ++p)
        EXPECT_FLOAT_EQ(t.value(p), x.value(p) + 1.5f);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, TewTsSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(10, 200)));

}  // namespace
}  // namespace pasta
