// Randomized algebraic property tests: invariants that must hold for
// every kernel on every input, independent of the dense references.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/convert.hpp"
#include "kernels/contraction.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/tew.hpp"
#include "kernels/ts.hpp"
#include "kernels/ttm.hpp"
#include "kernels/ttv.hpp"

namespace pasta {
namespace {

class RandomTensorProperty : public ::testing::TestWithParam<int> {
  protected:
    CooTensor make_tensor()
    {
        Rng rng(1000 + GetParam());
        const Size order = 2 + GetParam() % 3;
        const Index dim = 10 + (GetParam() % 5) * 4;
        return CooTensor::random(std::vector<Index>(order, dim),
                                 80 + GetParam() * 7, rng);
    }
};

TEST_P(RandomTensorProperty, TtvIsLinearInTheVector)
{
    CooTensor x = make_tensor();
    Rng rng(2000 + GetParam());
    const Size mode = GetParam() % x.order();
    DenseVector v1 = DenseVector::random(x.dim(mode), rng);
    DenseVector v2 = DenseVector::random(x.dim(mode), rng);
    const Value a = 2.5f;
    const Value b = -1.25f;
    DenseVector combo(x.dim(mode));
    for (Size i = 0; i < combo.size(); ++i)
        combo[i] = a * v1[i] + b * v2[i];

    CooTensor lhs = ttv_coo(x, combo, mode);
    CooTensor r1 = ttv_coo(x, v1, mode);
    CooTensor r2 = ttv_coo(x, v2, mode);
    ASSERT_TRUE(r1.same_pattern(r2));
    ASSERT_TRUE(lhs.same_pattern(r1));
    for (Size p = 0; p < lhs.nnz(); ++p)
        EXPECT_NEAR(lhs.value(p), a * r1.value(p) + b * r2.value(p),
                    1e-2)
            << p;
}

TEST_P(RandomTensorProperty, TtmWithIdentityMatrixReproducesTensor)
{
    CooTensor x = make_tensor();
    const Size mode = GetParam() % x.order();
    DenseMatrix eye(x.dim(mode), x.dim(mode), 0);
    for (Size i = 0; i < eye.rows(); ++i)
        eye(i, i) = 1.0f;
    ScooTensor y = ttm_coo(x, eye, mode);
    EXPECT_TRUE(tensors_almost_equal(y.to_coo(), x, 1e-3));
}

TEST_P(RandomTensorProperty, MttkrpWithOnesFactorsSumsFibers)
{
    // With all-ones factors, out(i, r) = sum of values of non-zeros
    // whose mode coordinate is i.
    CooTensor x = make_tensor();
    const Size mode = GetParam() % x.order();
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix(x.dim(m), 3, 1.0f));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out(x.dim(mode), 3);
    mttkrp_coo(x, factors, mode, out);

    std::vector<double> expected(x.dim(mode), 0.0);
    for (Size p = 0; p < x.nnz(); ++p)
        expected[x.index(mode, p)] += x.value(p);
    for (Index i = 0; i < x.dim(mode); ++i)
        for (Size r = 0; r < 3; ++r)
            EXPECT_NEAR(out(i, r), expected[i], 1e-2) << i;
}

TEST_P(RandomTensorProperty, TsComposition)
{
    CooTensor x = make_tensor();
    const Value a = 3.0f;
    const Value b = -0.5f;
    CooTensor y = ts_coo(ts_coo(x, TsOp::kMul, a), TsOp::kAdd, b);
    for (Size p = 0; p < x.nnz(); ++p)
        EXPECT_FLOAT_EQ(y.value(p), a * x.value(p) + b);
}

TEST_P(RandomTensorProperty, TewAddThenSubRoundTrips)
{
    CooTensor x = make_tensor();
    Rng rng(3000 + GetParam());
    CooTensor y = x;
    for (auto& v : y.values())
        v = rng.next_float() + 0.5f;
    CooTensor sum = tew_coo(x, y, EwOp::kAdd);
    CooTensor back = tew_coo(sum, y, EwOp::kSub);
    for (Size p = 0; p < x.nnz(); ++p)
        EXPECT_NEAR(back.value(p), x.value(p), 1e-4);
}

TEST_P(RandomTensorProperty, KernelsAreSortOrderInvariant)
{
    // The same tensor sorted differently must give identical MTTKRP.
    CooTensor x = make_tensor();
    Rng rng(4000 + GetParam());
    std::vector<DenseMatrix> mats;
    for (Size m = 0; m < x.order(); ++m)
        mats.push_back(DenseMatrix::random(x.dim(m), 4, rng));
    FactorList factors;
    for (const auto& m : mats)
        factors.push_back(&m);
    DenseMatrix out_lex(x.dim(0), 4);
    mttkrp_coo_seq(x, factors, 0, out_lex);

    CooTensor morton = x;
    morton.sort_morton(3);
    DenseMatrix out_morton(x.dim(0), 4);
    mttkrp_coo_seq(morton, factors, 0, out_morton);
    EXPECT_LT(max_abs_diff(out_lex, out_morton), 1e-3);
}

TEST_P(RandomTensorProperty, FormatConversionsCommuteWithTs)
{
    // ts(hicoo(x)) == hicoo(ts(x)): scalar ops commute with format
    // conversion.
    CooTensor x = make_tensor();
    HiCooTensor path1 = ts_hicoo(coo_to_hicoo(x, 3), TsOp::kMul, 2.0f);
    HiCooTensor path2 = coo_to_hicoo(ts_coo(x, TsOp::kMul, 2.0f), 3);
    EXPECT_TRUE(
        tensors_almost_equal(hicoo_to_coo(path1), hicoo_to_coo(path2)));
}

TEST_P(RandomTensorProperty, ContractionInnerProductIsSymmetric)
{
    CooTensor x = make_tensor();
    Rng rng(5000 + GetParam());
    CooTensor y =
        CooTensor::random(x.dims(), std::max<Size>(10, x.nnz() / 2), rng);
    EXPECT_NEAR(inner_product(x, y), inner_product(y, x),
                1e-3 * (1.0 + std::abs(inner_product(x, y))));
}

TEST_P(RandomTensorProperty, StorageFormulasAreExact)
{
    CooTensor x = make_tensor();
    EXPECT_EQ(x.storage_bytes(), 4 * (x.order() + 1) * x.nnz());
    const HiCooTensor h = coo_to_hicoo(x, 3);
    EXPECT_EQ(h.storage_bytes(),
              h.num_blocks() * (4 * x.order() + 8) +
                  h.nnz() * (x.order() + 4));
}

TEST_P(RandomTensorProperty, TtvReducesTotalMassWithOnesVector)
{
    // TTV with an all-ones vector sums each fiber: total output mass
    // equals total input mass.
    CooTensor x = make_tensor();
    const Size mode = GetParam() % x.order();
    DenseVector ones(x.dim(mode), 1.0f);
    CooTensor y = ttv_coo(x, ones, mode);
    double in_mass = 0;
    for (Size p = 0; p < x.nnz(); ++p)
        in_mass += x.value(p);
    double out_mass = 0;
    for (Size p = 0; p < y.nnz(); ++p)
        out_mass += y.value(p);
    EXPECT_NEAR(out_mass, in_mass, 1e-2 * std::abs(in_mass));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTensorProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace pasta
